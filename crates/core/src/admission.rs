//! System-wide overload protection: admission control, per-query
//! memory reservations, and the admitted-workload driver.
//!
//! Per-monitor shedding ([`pf_exec::MonitorGovernor`]) bounds one
//! query's instrumentation and cancellation (PR 8) bounds one query's
//! lifetime, but neither protects the *system*: an arrival storm can
//! queue without bound and exhaust monitor memory across queries. This
//! module adds the missing layer:
//!
//! * [`AdmissionController`] — a deterministic token bucket plus
//!   concurrency gate with two priority classes (interactive ahead of
//!   batch) and a bounded admission queue. Arrivals that find the
//!   queue full are shed with [`Error::Overloaded`], carrying a
//!   simulated-clock `retry_after_ms` hint.
//! * [`MemoryBudget`] — a global byte budget queries reserve against
//!   at admission, using the plan-shape-derived estimate from
//!   [`Database::estimate_monitor_bytes`]. Over-budget queries degrade
//!   in the fixed [`DegradeStep`] ladder: full monitoring, then
//!   governor-budgeted monitors (reusing the per-query shed recipes),
//!   then an unmonitored plan, then shedding.
//! * [`run_admitted_workload`] — a discrete-event driver on the
//!   simulated clock: arrivals, admissions, completions, deadlines,
//!   cancellations, and breaker probes all happen at simulated
//!   instants, and each admitted query's duration is its own
//!   deterministic simulated `elapsed_ms`. Every decision is therefore
//!   a pure function of `(workload, configuration, database)` — the
//!   admit/shed/breaker traces are byte-identical across repeat runs
//!   and across worker counts (intra-query morsel parallelism changes
//!   wall-clock time, never simulated time).

use crate::db::{Database, QueryOutcome};
use crate::parallel::{ParallelRunner, RunStats};
use crate::planner::MonitorConfig;
use crate::query::Query;
use pf_common::{env_knob, Error, Result};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Env knob: maximum concurrently executing queries (default 4).
pub const ADMIT_CONCURRENCY_ENV: &str = "PF_ADMIT_CONCURRENCY";
/// Env knob: admission-queue capacity; a full queue sheds (default 8).
pub const ADMIT_QUEUE_ENV: &str = "PF_ADMIT_QUEUE";
/// Env knob: token-bucket refill rate in queries per simulated second
/// (default 1000).
pub const ADMIT_RATE_ENV: &str = "PF_ADMIT_RATE";
/// Env knob: token-bucket burst capacity in queries (default 8).
pub const ADMIT_BURST_ENV: &str = "PF_ADMIT_BURST";
/// Env knob: global monitor-memory budget in bytes (default 1 MiB).
pub const MEM_BUDGET_ENV: &str = "PF_MEM_BUDGET";

/// Default [`MEM_BUDGET_ENV`] capacity.
pub const DEFAULT_MEM_BUDGET_BYTES: usize = 1 << 20;

/// Baseline bytes every running query reserves for executor scratch
/// (contexts, cursors, partial aggregates), independent of monitoring.
pub const BASE_QUERY_BYTES: usize = 64 << 10;

/// Smallest monitor budget worth degrading to: below this, budgeted
/// monitoring would shed everything anyway, so the ladder skips
/// straight to an unmonitored plan.
pub const MIN_MONITOR_BYTES: usize = 64;

/// Admission priority class of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive; queued ahead of batch work.
    Interactive = 0,
    /// Throughput work; yields queue position to interactive arrivals.
    Batch = 1,
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        })
    }
}

/// Token-bucket and gate parameters.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Queries allowed to execute at once.
    pub max_concurrent: usize,
    /// Queued queries beyond which arrivals are shed.
    pub queue_capacity: usize,
    /// Token refill rate, queries per simulated second.
    /// `f64::INFINITY` disables rate limiting (the bucket stays full).
    pub tokens_per_sec: f64,
    /// Bucket capacity: the largest arrival burst admitted at once.
    pub burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            max_concurrent: 4,
            queue_capacity: 8,
            tokens_per_sec: 1000.0,
            burst: 8.0,
        }
    }
}

impl AdmissionConfig {
    /// Reads `PF_ADMIT_*` overrides on top of the defaults.
    pub fn from_env() -> Self {
        let d = Self::default();
        AdmissionConfig {
            max_concurrent: env_knob(ADMIT_CONCURRENCY_ENV).unwrap_or(d.max_concurrent),
            queue_capacity: env_knob(ADMIT_QUEUE_ENV).unwrap_or(d.queue_capacity),
            tokens_per_sec: env_knob(ADMIT_RATE_ENV).unwrap_or(d.tokens_per_sec),
            burst: env_knob(ADMIT_BURST_ENV).unwrap_or(d.burst),
        }
    }

    fn sanitized(mut self) -> Self {
        self.max_concurrent = self.max_concurrent.max(1);
        if self.tokens_per_sec.is_nan() || self.tokens_per_sec <= 0.0 {
            self.tokens_per_sec = 1e-6;
        }
        if self.burst.is_nan() || self.burst < 1.0 {
            self.burst = 1.0;
        }
        self
    }
}

/// The controller's verdict on one arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admitted immediately: a slot and a token were available.
    Admit,
    /// Parked in the bounded admission queue at this depth (1-based).
    Queued {
        /// Queue depth after insertion.
        depth: usize,
    },
    /// Shed: the queue is full. Retry after the hinted simulated delay.
    Shed {
        /// Simulated milliseconds after which a retry could be admitted.
        retry_after_ms: u64,
    },
}

/// A queue entry: who is waiting, and since when.
#[derive(Debug, Clone)]
struct QueuedQuery {
    id: u64,
    class: Priority,
    enqueued_ms: f64,
}

/// An admission granted from the queue by [`AdmissionController::drain`].
#[derive(Debug, Clone)]
pub struct DrainedAdmission {
    /// The queued query's id (its workload index, for the driver).
    pub id: u64,
    /// Its priority class.
    pub class: Priority,
    /// Simulated milliseconds it waited in the queue.
    pub waited_ms: f64,
}

/// Counters the controller accumulates; all deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdmissionStats {
    /// Arrivals seen.
    pub submitted: u64,
    /// Queries admitted (immediately or from the queue).
    pub admitted: u64,
    /// Arrivals that had to queue first.
    pub queued: u64,
    /// Arrivals shed at the gate (queue full).
    pub shed_admission: u64,
    /// Admitted queries shed by the memory ladder (driver-recorded).
    pub shed_memory: u64,
    /// Deepest the queue ever got.
    pub max_queue_depth: usize,
    /// Most queries ever running at once.
    pub max_running: usize,
    /// Simulated queue wait of every admitted-from-queue query, in
    /// admission order (immediate admissions contribute 0).
    pub queue_wait_ms: Vec<f64>,
}

impl AdmissionStats {
    /// Total shed queries (gate + memory ladder).
    pub fn shed(&self) -> u64 {
        self.shed_admission + self.shed_memory
    }

    /// The p99 simulated queue wait in ms (0 when nothing waited).
    pub fn p99_queue_wait_ms(&self) -> f64 {
        if self.queue_wait_ms.is_empty() {
            return 0.0;
        }
        let mut waits = self.queue_wait_ms.clone();
        waits.sort_by(|a, b| a.total_cmp(b));
        let rank = ((waits.len() as f64) * 0.99).ceil() as usize;
        waits[rank.saturating_sub(1).min(waits.len() - 1)]
    }
}

/// Deterministic token-bucket + concurrency admission gate.
///
/// All times are simulated milliseconds supplied by the caller; the
/// controller holds no real clock, so identical call sequences produce
/// identical decisions everywhere.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    tokens: f64,
    last_refill_ms: f64,
    running: usize,
    queue: VecDeque<QueuedQuery>,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// A controller with a full bucket at simulated time 0.
    pub fn new(cfg: AdmissionConfig) -> Self {
        let cfg = cfg.sanitized();
        AdmissionController {
            tokens: cfg.burst,
            last_refill_ms: 0.0,
            running: 0,
            queue: VecDeque::new(),
            stats: AdmissionStats::default(),
            cfg,
        }
    }

    fn refill(&mut self, now_ms: f64) {
        if now_ms > self.last_refill_ms {
            let gained = (now_ms - self.last_refill_ms) / 1000.0 * self.cfg.tokens_per_sec;
            self.tokens = (self.tokens + gained).min(self.cfg.burst);
            self.last_refill_ms = now_ms;
        }
    }

    fn refilled_tokens(&self, now_ms: f64) -> f64 {
        if now_ms <= self.last_refill_ms {
            return self.tokens;
        }
        let gained = (now_ms - self.last_refill_ms) / 1000.0 * self.cfg.tokens_per_sec;
        (self.tokens + gained).min(self.cfg.burst)
    }

    fn can_admit(&self) -> bool {
        self.running < self.cfg.max_concurrent && self.tokens >= 1.0
    }

    fn take_slot(&mut self) {
        self.tokens -= 1.0;
        self.running += 1;
        self.stats.admitted += 1;
        self.stats.max_running = self.stats.max_running.max(self.running);
    }

    /// Submits query `id` of `class` at `now_ms` and decides its fate.
    /// Admission requires an execution slot *and* a token *and* an
    /// empty queue (queued work is never overtaken by a same-or-lower
    /// priority arrival; interactive arrivals overtake queued batch
    /// work by queue position, not by jumping the gate).
    pub fn request(&mut self, id: u64, class: Priority, now_ms: f64) -> AdmitDecision {
        self.refill(now_ms);
        self.stats.submitted += 1;
        let blocked_by_queue = self.queue.iter().any(|q| q.class <= class);
        if !blocked_by_queue && self.can_admit() {
            self.take_slot();
            self.stats.queue_wait_ms.push(0.0);
            return AdmitDecision::Admit;
        }
        if self.queue.len() < self.cfg.queue_capacity {
            // Interactive arrivals park ahead of every queued batch
            // query but behind earlier interactive ones (FIFO within a
            // class).
            let pos = self
                .queue
                .iter()
                .position(|q| q.class > class)
                .unwrap_or(self.queue.len());
            self.queue.insert(
                pos,
                QueuedQuery {
                    id,
                    class,
                    enqueued_ms: now_ms,
                },
            );
            self.stats.queued += 1;
            self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
            return AdmitDecision::Queued {
                depth: self.queue.len(),
            };
        }
        self.stats.shed_admission += 1;
        AdmitDecision::Shed {
            retry_after_ms: self.retry_after_ms(),
        }
    }

    /// Deterministic retry hint: simulated ms until enough tokens exist
    /// to drain the current queue plus one more query. At least 1.
    fn retry_after_ms(&self) -> u64 {
        let deficit = (self.queue.len() as f64 + 1.0 - self.tokens).max(0.0);
        let ms = deficit / self.cfg.tokens_per_sec * 1000.0;
        (ms.ceil() as u64).max(1)
    }

    /// Releases an execution slot at `now_ms` (a query completed, was
    /// aborted, or was shed by the memory ladder after admission).
    pub fn on_complete(&mut self, now_ms: f64) {
        self.refill(now_ms);
        self.running = self.running.saturating_sub(1);
    }

    /// Admits queued queries while slots and tokens allow, returning
    /// them in admission order with their simulated waits.
    pub fn drain(&mut self, now_ms: f64) -> Vec<DrainedAdmission> {
        self.refill(now_ms);
        let mut admitted = Vec::new();
        while self.can_admit() {
            let Some(front) = self.queue.pop_front() else {
                break;
            };
            self.take_slot();
            let waited_ms = (now_ms - front.enqueued_ms).max(0.0);
            self.stats.queue_wait_ms.push(waited_ms);
            admitted.push(DrainedAdmission {
                id: front.id,
                class: front.class,
                waited_ms,
            });
        }
        admitted
    }

    /// The earliest simulated instant at which a queued query could be
    /// admitted by token refill alone — the driver's wakeup hint.
    /// `None` when nothing is queued or no execution slot is free (a
    /// completion, not time, unblocks those cases).
    pub fn next_admit_opportunity_ms(&self, now_ms: f64) -> Option<f64> {
        if self.queue.is_empty() || self.running >= self.cfg.max_concurrent {
            return None;
        }
        let tokens = self.refilled_tokens(now_ms);
        if tokens >= 1.0 {
            return Some(now_ms);
        }
        Some(now_ms + (1.0 - tokens) / self.cfg.tokens_per_sec * 1000.0)
    }

    /// Queries currently executing.
    pub fn running(&self) -> usize {
        self.running
    }

    /// Queries currently queued.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The accumulated counters.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Records a memory-ladder shed (driver bookkeeping).
    pub fn note_memory_shed(&mut self) {
        self.stats.shed_memory += 1;
    }

    /// The active configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Clears every counter (the CLI's `.faults off` / `.admit reset`
    /// path) without touching the bucket, queue, or running set.
    pub fn reset_stats(&mut self) {
        self.stats = AdmissionStats::default();
    }
}

// ---------------------------------------------------------------------
// Memory reservations and the degradation ladder.
// ---------------------------------------------------------------------

/// A global byte budget queries reserve monitor + scratch memory
/// against at admission. Purely arithmetic — no allocation happens
/// here — so reservation decisions are deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBudget {
    capacity: usize,
    reserved: usize,
    peak_reserved: usize,
    /// Bytes estimates exceeded actuals by, summed over reconciliations.
    over_estimated: u64,
    /// Bytes actuals exceeded estimates by, summed over reconciliations.
    under_estimated: u64,
}

impl MemoryBudget {
    /// A budget of `capacity` bytes, nothing reserved.
    pub fn new(capacity: usize) -> Self {
        MemoryBudget {
            capacity,
            reserved: 0,
            peak_reserved: 0,
            over_estimated: 0,
            under_estimated: 0,
        }
    }

    /// A budget sized by `PF_MEM_BUDGET` (default 1 MiB).
    pub fn from_env() -> Self {
        Self::new(env_knob(MEM_BUDGET_ENV).unwrap_or(DEFAULT_MEM_BUDGET_BYTES))
    }

    /// Reserves `bytes` if they fit; records the new peak.
    pub fn try_reserve(&mut self, bytes: usize) -> bool {
        if bytes > self.free() {
            return false;
        }
        self.reserved += bytes;
        self.peak_reserved = self.peak_reserved.max(self.reserved);
        true
    }

    /// Releases `bytes` of reservation.
    pub fn release(&mut self, bytes: usize) {
        self.reserved = self.reserved.saturating_sub(bytes);
    }

    /// Releases a completed query's reservation, recording how far the
    /// admission estimate missed what the run actually held.
    pub fn reconcile(&mut self, reserved: usize, actual: usize) {
        self.release(reserved);
        if reserved >= actual {
            self.over_estimated += (reserved - actual) as u64;
        } else {
            self.under_estimated += (actual - reserved) as u64;
        }
    }

    /// Unreserved bytes.
    pub fn free(&self) -> usize {
        self.capacity - self.reserved
    }

    /// Currently reserved bytes.
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// The high-water reservation mark.
    pub fn peak_reserved(&self) -> usize {
        self.peak_reserved
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total bytes by which estimates exceeded actuals.
    pub fn over_estimated(&self) -> u64 {
        self.over_estimated
    }

    /// Total bytes by which actuals exceeded estimates.
    pub fn under_estimated(&self) -> u64 {
        self.under_estimated
    }
}

/// The fixed degradation ladder, least degraded first. A query only
/// ever moves *down* this ladder as free memory shrinks — never down
/// then back up within one decision — so the degraded plans of any
/// workload are always a prefix-ordered walk of these rungs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeStep {
    /// Full monitoring as configured.
    Full = 0,
    /// Monitors under a governor byte budget (the per-query shed
    /// recipes of [`pf_exec::MonitorGovernor`] decide which survive).
    BudgetedMonitors = 1,
    /// An unmonitored plan: same answer, no feedback harvested.
    Unmonitored = 2,
    /// Shed with [`Error::Overloaded`]; the query never runs.
    Shed = 3,
}

impl fmt::Display for DegradeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeStep::Full => "full",
            DegradeStep::BudgetedMonitors => "budgeted",
            DegradeStep::Unmonitored => "unmonitored",
            DegradeStep::Shed => "shed",
        })
    }
}

/// Decides how a query whose full-monitoring estimate is `estimate`
/// bytes runs when `free` bytes remain: returns the ladder rung and
/// the bytes to reserve for it. Pure, so exhaustively testable: for a
/// fixed estimate the rung is monotone in `free`, and walking `free`
/// downward visits the rungs in declaration order.
pub fn degrade_step(free: usize, estimate: usize) -> (DegradeStep, usize) {
    let full = BASE_QUERY_BYTES.saturating_add(estimate);
    if estimate > 0 && free >= full {
        return (DegradeStep::Full, full);
    }
    if estimate == 0 {
        // Monitoring is off in the config: "full" is just the scratch
        // baseline and the monitor rungs collapse.
        return if free >= BASE_QUERY_BYTES {
            (DegradeStep::Full, BASE_QUERY_BYTES)
        } else {
            (DegradeStep::Shed, 0)
        };
    }
    if free >= BASE_QUERY_BYTES + MIN_MONITOR_BYTES {
        // Reserve everything that fits (capped by the full estimate);
        // the governor sheds whatever exceeds the monitor share.
        return (DegradeStep::BudgetedMonitors, free.min(full));
    }
    if free >= BASE_QUERY_BYTES {
        return (DegradeStep::Unmonitored, BASE_QUERY_BYTES);
    }
    (DegradeStep::Shed, 0)
}

// ---------------------------------------------------------------------
// The admitted-workload driver.
// ---------------------------------------------------------------------

/// One query of an admitted workload.
#[derive(Debug, Clone)]
pub struct AdmittedJob {
    /// The query to run.
    pub query: Query,
    /// Its priority class.
    pub class: Priority,
    /// Simulated arrival instant, in ms.
    pub arrival_ms: f64,
    /// Optional deadline relative to *admission*, in simulated ms.
    pub deadline_ms: Option<u64>,
    /// Optional absolute simulated instant at which the query is
    /// cancelled if still queued or running.
    pub cancel_at_ms: Option<f64>,
}

impl AdmittedJob {
    /// A plain batch job arriving at `arrival_ms` with no constraints.
    pub fn batch(query: Query, arrival_ms: f64) -> Self {
        AdmittedJob {
            query,
            class: Priority::Batch,
            arrival_ms,
            deadline_ms: None,
            cancel_at_ms: None,
        }
    }

    /// An interactive job arriving at `arrival_ms`.
    pub fn interactive(query: Query, arrival_ms: f64) -> Self {
        AdmittedJob {
            class: Priority::Interactive,
            ..Self::batch(query, arrival_ms)
        }
    }
}

/// What happened to one admitted-workload job.
#[derive(Debug)]
pub struct JobRecord {
    /// The query's outcome, or why it did not complete.
    pub result: Result<QueryOutcome>,
    /// The ladder rung it ran at (`None` when never admitted).
    pub step: Option<DegradeStep>,
    /// Simulated instant it was admitted (`None` when shed at the gate).
    pub admitted_ms: Option<f64>,
    /// Simulated instant its slot was released (shed: decision time).
    pub completed_ms: f64,
    /// Simulated ms spent in the admission queue.
    pub queue_wait_ms: f64,
}

/// Everything one [`run_admitted_workload`] invocation produced.
#[derive(Debug)]
pub struct AdmittedRunReport {
    /// Per-job records, index-aligned with the submitted workload.
    pub records: Vec<JobRecord>,
    /// The admit/queue/shed/start/finish trace, one line per event, in
    /// simulated-time order — byte-identical across repeat runs and
    /// worker counts.
    pub trace: Vec<String>,
    /// The controller's counters.
    pub stats: AdmissionStats,
    /// The final memory-budget state (peak, reconciliation totals).
    pub budget: MemoryBudget,
    /// Reports absorbed into the in-memory hint set.
    pub absorbed_reports: u64,
    /// Reports also made durable in the feedback store.
    pub durable_reports: u64,
    /// Reports lost entirely (store failed with no breaker attached).
    pub lost_reports: u64,
    /// Overload counters folded into the pool-stats shape.
    pub run_stats: RunStats,
    /// The breaker's transition trace (empty without a breaker).
    pub breaker_trace: Vec<String>,
}

impl AdmittedRunReport {
    /// Fraction of submitted queries shed (gate + memory ladder).
    pub fn shed_rate(&self) -> f64 {
        if self.stats.submitted == 0 {
            return 0.0;
        }
        self.stats.shed() as f64 / self.stats.submitted as f64
    }
}

/// Simulated time in integer microseconds — the driver's event-queue
/// key. Integer keys make event ordering total and platform-exact.
type SimUs = u64;

fn to_us(ms: f64) -> SimUs {
    (ms * 1000.0).round().max(0.0) as SimUs
}

fn us_to_ms(us: SimUs) -> f64 {
    us as f64 / 1000.0
}

fn fmt_t(us: SimUs) -> String {
    format!("{}.{:03}", us / 1000, us % 1000)
}

/// A completion event: the instant a previously admitted query
/// releases its slot, with everything needed to settle it.
struct PendingCompletion {
    idx: usize,
    reservation: usize,
    step: DegradeStep,
    admitted_us: SimUs,
    queue_wait_ms: f64,
    result: Result<QueryOutcome>,
}

/// Runs `jobs` through admission control on the simulated clock.
///
/// The driver is a serial discrete-event loop: at each simulated
/// instant it settles completions (freeing slots, reservations, and
/// absorbing feedback through the breaker), drains the admission
/// queue, then processes arrivals. An admitted query executes *at its
/// admission instant* via [`ParallelRunner::run_query`] (morsel
/// parallelism inside one query; byte-identical to a serial run) or,
/// when it carries a deadline or cancellation, via the interruptible
/// serial path — either way its simulated `elapsed_ms` schedules the
/// completion event. Shed queries never execute at all.
///
/// Determinism: every decision reads only simulated time, the
/// controller/budget state, and deterministic per-query outcomes, so
/// the returned trace is byte-identical across repeat runs and across
/// `runner` worker counts.
pub fn run_admitted_workload(
    db: &mut Database,
    runner: &ParallelRunner,
    jobs: &[AdmittedJob],
    cfg: &MonitorConfig,
    admission: AdmissionConfig,
    mut budget: MemoryBudget,
) -> AdmittedRunReport {
    let mut controller = AdmissionController::new(admission);
    let mut records: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
    let mut trace: Vec<String> = Vec::new();
    let mut completions: BTreeMap<(SimUs, u64), PendingCompletion> = BTreeMap::new();
    let mut seq = 0u64;
    let mut absorbed_reports = 0u64;
    let mut durable_reports = 0u64;
    let mut lost_reports = 0u64;
    let mut queries_cancelled = 0u64;

    let mut arrivals: Vec<(SimUs, usize)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (to_us(j.arrival_ms), i))
        .collect();
    arrivals.sort();
    let mut next_arrival = 0usize;

    // Admits job `idx` right now: walks the memory ladder, executes or
    // sheds, and either schedules a completion event or frees the slot
    // immediately. Returns whether the slot was freed synchronously
    // (the caller then re-drains the queue).
    let admit_and_run = |idx: usize,
                         now_us: SimUs,
                         queue_wait_ms: f64,
                         db: &mut Database,
                         controller: &mut AdmissionController,
                         budget: &mut MemoryBudget,
                         completions: &mut BTreeMap<(SimUs, u64), PendingCompletion>,
                         seq: &mut u64,
                         trace: &mut Vec<String>,
                         records: &mut Vec<Option<JobRecord>>,
                         queries_cancelled: &mut u64|
     -> bool {
        let job = &jobs[idx];
        let now_ms = us_to_ms(now_us);

        // Cancelled while queued: the slot frees immediately.
        if job.cancel_at_ms.is_some_and(|c| to_us(c) <= now_us) {
            trace.push(format!("t={} q{idx} cancelled before start", fmt_t(now_us)));
            *queries_cancelled += 1;
            records[idx] = Some(JobRecord {
                result: Err(Error::Cancelled),
                step: None,
                admitted_ms: Some(now_ms),
                completed_ms: now_ms,
                queue_wait_ms,
            });
            controller.on_complete(now_ms);
            return true;
        }

        let cfg_i = ParallelRunner::cfg_for(cfg, idx);
        let estimate = match db.estimate_monitor_bytes(&job.query, &cfg_i) {
            Ok(b) => b,
            Err(e) => {
                // A query that cannot even be planned fails cleanly
                // without wedging the workload.
                trace.push(format!("t={} q{idx} failed planning", fmt_t(now_us)));
                records[idx] = Some(JobRecord {
                    result: Err(e),
                    step: None,
                    admitted_ms: Some(now_ms),
                    completed_ms: now_ms,
                    queue_wait_ms,
                });
                controller.on_complete(now_ms);
                return true;
            }
        };

        let (step, reservation) = degrade_step(budget.free(), estimate);
        if step == DegradeStep::Shed {
            let retry_after_ms = completions
                .keys()
                .next()
                .map(|(t, _)| (t.saturating_sub(now_us)).div_ceil(1000).max(1))
                .unwrap_or(1);
            trace.push(format!(
                "t={} q{idx} memshed retry={retry_after_ms}",
                fmt_t(now_us)
            ));
            controller.note_memory_shed();
            records[idx] = Some(JobRecord {
                result: Err(Error::Overloaded { retry_after_ms }),
                step: Some(DegradeStep::Shed),
                admitted_ms: Some(now_ms),
                completed_ms: now_ms,
                queue_wait_ms,
            });
            controller.on_complete(now_ms);
            return true;
        }
        let reserved = budget.try_reserve(reservation);
        debug_assert!(reserved, "degrade_step returned an unreservable rung");

        let run_cfg = match step {
            DegradeStep::Full => cfg_i.clone(),
            DegradeStep::BudgetedMonitors => MonitorConfig {
                memory_budget: Some(reservation.saturating_sub(BASE_QUERY_BYTES)),
                ..cfg_i.clone()
            },
            DegradeStep::Unmonitored => MonitorConfig::off(),
            DegradeStep::Shed => unreachable!("shed handled above"),
        };
        trace.push(format!(
            "t={} q{idx} start {step} est={estimate} reserve={reservation}",
            fmt_t(now_us)
        ));

        // Effective interrupt budget: the job's own deadline and/or its
        // absolute cancellation instant, whichever bites first.
        let deadline_rel = job.deadline_ms;
        let cancel_rel = job
            .cancel_at_ms
            .map(|c| (to_us(c).saturating_sub(now_us)) / 1000);
        let eff = match (deadline_rel, cancel_rel) {
            (Some(d), Some(c)) => Some(d.min(c)),
            (Some(d), None) => Some(d),
            (None, Some(c)) => Some(c),
            (None, None) => None,
        };
        let cancel_bites =
            matches!((deadline_rel, cancel_rel), (d, Some(c)) if d.is_none_or(|d| c < d));

        let result = match eff {
            None => runner.run_query(db, &job.query, &run_cfg),
            Some(ms) => db
                .run_query_with_deadline(&job.query, &run_cfg, ms)
                .map_err(|e| match e {
                    Error::DeadlineExceeded { .. } if cancel_bites => Error::Cancelled,
                    other => other,
                }),
        };
        let done_us = match &result {
            Ok(outcome) => now_us + to_us(outcome.elapsed_ms),
            Err(e) if e.is_abort() => now_us + eff.unwrap_or(0) * 1000,
            Err(_) => now_us,
        };
        completions.insert(
            (done_us, *seq),
            PendingCompletion {
                idx,
                reservation,
                step,
                admitted_us: now_us,
                queue_wait_ms,
                result,
            },
        );
        *seq += 1;
        false
    };

    macro_rules! admit {
        ($idx:expr, $now:expr, $wait:expr) => {
            admit_and_run(
                $idx,
                $now,
                $wait,
                db,
                &mut controller,
                &mut budget,
                &mut completions,
                &mut seq,
                &mut trace,
                &mut records,
                &mut queries_cancelled,
            )
        };
    }

    macro_rules! drain_queue {
        ($now:expr) => {
            loop {
                let drained = controller.drain(us_to_ms($now));
                if drained.is_empty() {
                    break;
                }
                for adm in drained {
                    let idx = adm.id as usize;
                    trace.push(format!(
                        "t={} q{idx} {} admit wait={:.3}",
                        fmt_t($now),
                        adm.class,
                        adm.waited_ms
                    ));
                    admit!(idx, $now, adm.waited_ms);
                }
            }
        };
    }

    let mut now_us: SimUs = 0;
    loop {
        let na = (next_arrival < arrivals.len()).then(|| arrivals[next_arrival].0);
        let nc = completions.keys().next().map(|(t, _)| *t);
        let nt = controller
            .next_admit_opportunity_ms(us_to_ms(now_us))
            .map(|ms| to_us(ms).max(now_us + 1));
        let Some(t) = [na, nc, nt].into_iter().flatten().min() else {
            break;
        };
        now_us = t;

        // 1. Settle completions due now (each may unblock the queue).
        while let Some(entry) = completions.first_entry() {
            if entry.key().0 > now_us {
                break;
            }
            let done = entry.remove();
            let idx = done.idx;
            let now_ms = us_to_ms(now_us);
            match &done.result {
                Ok(outcome) => {
                    budget.reconcile(
                        done.reservation,
                        BASE_QUERY_BYTES.saturating_add(outcome.monitor_bytes),
                    );
                    trace.push(format!(
                        "t={} q{idx} done count={} mon={}",
                        fmt_t(now_us),
                        outcome.count,
                        outcome.monitor_bytes
                    ));
                    if !outcome.report.measurements.is_empty() {
                        match db.absorb_feedback_at(&outcome.report, now_us / 1000) {
                            Ok(true) => {
                                absorbed_reports += 1;
                                durable_reports += 1;
                            }
                            Ok(false) => absorbed_reports += 1,
                            Err(_) => lost_reports += 1,
                        }
                    }
                }
                Err(e) => {
                    budget.release(done.reservation);
                    if e.is_abort() {
                        queries_cancelled += 1;
                    }
                    let tag = match e {
                        Error::Cancelled => "cancelled".to_string(),
                        Error::DeadlineExceeded { deadline_ms } => {
                            format!("deadline={deadline_ms}")
                        }
                        other => format!("failed {other}"),
                    };
                    trace.push(format!("t={} q{idx} {tag}", fmt_t(now_us)));
                }
            }
            records[idx] = Some(JobRecord {
                result: done.result,
                step: Some(done.step),
                admitted_ms: Some(us_to_ms(done.admitted_us)),
                completed_ms: now_ms,
                queue_wait_ms: done.queue_wait_ms,
            });
            controller.on_complete(now_ms);
            drain_queue!(now_us);
        }

        // 2. Token refills alone may unblock the queue.
        drain_queue!(now_us);

        // 3. Arrivals due now.
        while next_arrival < arrivals.len() && arrivals[next_arrival].0 <= now_us {
            let idx = arrivals[next_arrival].1;
            next_arrival += 1;
            let job = &jobs[idx];
            match controller.request(idx as u64, job.class, us_to_ms(now_us)) {
                AdmitDecision::Admit => {
                    trace.push(format!(
                        "t={} q{idx} {} admit wait=0.000",
                        fmt_t(now_us),
                        job.class
                    ));
                    admit!(idx, now_us, 0.0);
                    drain_queue!(now_us);
                }
                AdmitDecision::Queued { depth } => {
                    trace.push(format!(
                        "t={} q{idx} {} queued depth={depth}",
                        fmt_t(now_us),
                        job.class
                    ));
                }
                AdmitDecision::Shed { retry_after_ms } => {
                    trace.push(format!(
                        "t={} q{idx} {} shed retry={retry_after_ms}",
                        fmt_t(now_us),
                        job.class
                    ));
                    records[idx] = Some(JobRecord {
                        result: Err(Error::Overloaded { retry_after_ms }),
                        step: None,
                        admitted_ms: None,
                        completed_ms: us_to_ms(now_us),
                        queue_wait_ms: 0.0,
                    });
                }
            }
        }
    }

    let stats = controller.stats().clone();
    let breaker_trace = db.breaker().map(|b| b.trace_lines()).unwrap_or_default();
    let run_stats = RunStats {
        queries_cancelled,
        queries_shed: stats.shed(),
        breaker_trips: db.breaker().map(|b| b.trips()).unwrap_or(0),
        ..RunStats::default()
    };
    AdmittedRunReport {
        records: records
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.unwrap_or(JobRecord {
                    result: Err(Error::Internal(format!("job {i} never settled"))),
                    step: None,
                    admitted_ms: None,
                    completed_ms: 0.0,
                    queue_wait_ms: 0.0,
                })
            })
            .collect(),
        trace,
        stats,
        budget,
        absorbed_reports,
        durable_reports,
        lost_reports,
        run_stats,
        breaker_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl(max_concurrent: usize, queue: usize, rate: f64, burst: f64) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            max_concurrent,
            queue_capacity: queue,
            tokens_per_sec: rate,
            burst,
        })
    }

    #[test]
    fn admits_until_gate_then_queues_then_sheds() {
        let mut c = ctrl(2, 2, f64::INFINITY, 8.0);
        assert_eq!(c.request(0, Priority::Batch, 0.0), AdmitDecision::Admit);
        assert_eq!(c.request(1, Priority::Batch, 0.0), AdmitDecision::Admit);
        assert_eq!(
            c.request(2, Priority::Batch, 0.0),
            AdmitDecision::Queued { depth: 1 }
        );
        assert_eq!(
            c.request(3, Priority::Batch, 0.0),
            AdmitDecision::Queued { depth: 2 }
        );
        let AdmitDecision::Shed { retry_after_ms } = c.request(4, Priority::Batch, 0.0) else {
            panic!("queue is full: must shed");
        };
        assert!(retry_after_ms >= 1);
        assert_eq!(c.stats().shed_admission, 1);
        assert_eq!(c.stats().max_queue_depth, 2);

        // A completion admits the queue head.
        c.on_complete(1.0);
        let drained = c.drain(1.0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, 2);
        assert_eq!(drained[0].waited_ms, 1.0);
    }

    #[test]
    fn interactive_overtakes_queued_batch() {
        let mut c = ctrl(1, 4, f64::INFINITY, 8.0);
        assert_eq!(c.request(0, Priority::Batch, 0.0), AdmitDecision::Admit);
        c.request(1, Priority::Batch, 0.0);
        c.request(2, Priority::Interactive, 0.0);
        c.request(3, Priority::Batch, 0.0);
        c.on_complete(5.0);
        let drained = c.drain(5.0);
        assert_eq!(
            drained.iter().map(|d| d.id).collect::<Vec<_>>(),
            vec![2],
            "the interactive arrival parked ahead of earlier batch work"
        );
        c.on_complete(6.0);
        assert_eq!(c.drain(6.0)[0].id, 1, "FIFO among batch");
    }

    #[test]
    fn token_bucket_rations_admissions_over_time() {
        // 1 token per 100 simulated ms, burst 1.
        let mut c = ctrl(8, 8, 10.0, 1.0);
        assert_eq!(c.request(0, Priority::Batch, 0.0), AdmitDecision::Admit);
        assert_eq!(
            c.request(1, Priority::Batch, 1.0),
            AdmitDecision::Queued { depth: 1 },
            "bucket empty: must wait for refill"
        );
        let opp = c
            .next_admit_opportunity_ms(1.0)
            .expect("queued + free slot");
        assert!((opp - 100.0).abs() < 1e-9, "one token at t=100, got {opp}");
        assert!(c.drain(50.0).is_empty());
        let drained = c.drain(100.0);
        assert_eq!(drained.len(), 1);
        assert!((drained[0].waited_ms - 99.0).abs() < 1e-9);
    }

    #[test]
    fn queue_blocks_same_class_overtaking() {
        let mut c = ctrl(2, 4, f64::INFINITY, 8.0);
        c.request(0, Priority::Batch, 0.0);
        c.request(1, Priority::Batch, 0.0);
        c.request(2, Priority::Batch, 0.0); // queued
        c.on_complete(1.0);
        // A fresh batch arrival must not bypass the queued one even
        // though a slot is free.
        assert_eq!(
            c.request(3, Priority::Batch, 1.0),
            AdmitDecision::Queued { depth: 2 }
        );
        // But an interactive arrival may (no queued interactive ahead).
        assert_eq!(
            c.request(4, Priority::Interactive, 1.0),
            AdmitDecision::Admit
        );
    }

    #[test]
    fn stats_reset_clears_counters() {
        let mut c = ctrl(1, 0, f64::INFINITY, 8.0);
        c.request(0, Priority::Batch, 0.0);
        c.request(1, Priority::Batch, 0.0); // shed (queue cap 0)
        assert_eq!(c.stats().shed_admission, 1);
        c.reset_stats();
        assert_eq!(c.stats(), &AdmissionStats::default());
        assert_eq!(c.running(), 1, "reset touches counters, not state");
    }

    #[test]
    fn budget_reserves_releases_reconciles() {
        let mut b = MemoryBudget::new(100);
        assert!(b.try_reserve(60));
        assert!(!b.try_reserve(50));
        assert!(b.try_reserve(40));
        assert_eq!(b.free(), 0);
        assert_eq!(b.peak_reserved(), 100);
        b.release(40);
        b.reconcile(60, 45);
        assert_eq!(b.free(), 100);
        assert_eq!(b.over_estimated(), 15);
        b.try_reserve(10);
        b.reconcile(10, 25);
        assert_eq!(b.under_estimated(), 15);
        assert_eq!(b.peak_reserved(), 100);
    }

    #[test]
    fn ladder_is_monotone_and_prefix_ordered() {
        // Exhaustive over free-byte values (at byte granularity around
        // the rung boundaries, coarse in between) for estimates that
        // exercise every rung: as free memory shrinks the chosen rung
        // only ever moves down the ladder, one contiguous band per
        // rung — i.e. the degraded plans of any budget walk are a
        // prefix-ordered run of the fixed ladder.
        for estimate in [0usize, 1, MIN_MONITOR_BYTES, 4096, 1 << 20] {
            let cap = BASE_QUERY_BYTES + estimate + 1024;
            let mut last_step: Option<DegradeStep> = None;
            let mut seen: Vec<DegradeStep> = Vec::new();
            // Descending free memory.
            for free in (0..=cap).rev() {
                let (step, reservation) = degrade_step(free, estimate);
                // The reservation must actually fit.
                assert!(reservation <= free || step == DegradeStep::Shed);
                if step != DegradeStep::Shed {
                    assert!(reservation >= BASE_QUERY_BYTES);
                }
                match last_step {
                    Some(prev) => assert!(
                        step >= prev,
                        "free={free} est={estimate}: rung {step} above previous {prev}"
                    ),
                    None => assert_eq!(step, DegradeStep::Full, "ample memory must run undegraded"),
                }
                if last_step != Some(step) {
                    seen.push(step);
                    last_step = Some(step);
                }
            }
            assert_eq!(*seen.last().expect("nonempty"), DegradeStep::Shed);
            // The distinct rungs visited are a strictly descending walk
            // of the ladder — never a skip backwards, never a repeat.
            let mut sorted = seen.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(
                seen, sorted,
                "est={estimate}: walk {seen:?} not ladder-ordered"
            );
            if estimate > MIN_MONITOR_BYTES {
                assert_eq!(
                    seen,
                    vec![
                        DegradeStep::Full,
                        DegradeStep::BudgetedMonitors,
                        DegradeStep::Unmonitored,
                        DegradeStep::Shed
                    ],
                    "a large estimate must visit every rung"
                );
            }
        }
    }

    #[test]
    fn admission_config_env_is_parsed() {
        // Serialized against other env-mutating tests via the
        // pf-common lock idiom: this test only reads defaults (the
        // variables are process-global; see pf-common's env tests for
        // the mutation coverage).
        let cfg = AdmissionConfig::default();
        assert_eq!(cfg.max_concurrent, 4);
        assert_eq!(cfg.queue_capacity, 8);
        let c = AdmissionController::new(AdmissionConfig {
            max_concurrent: 0,
            queue_capacity: 0,
            tokens_per_sec: -1.0,
            burst: 0.0,
        });
        assert_eq!(c.config().max_concurrent, 1, "sanitized");
        assert!(c.config().tokens_per_sec > 0.0);
        assert!(c.config().burst >= 1.0);
    }
}
