//! Durable, crash-safe persistence for execution feedback.
//!
//! The paper's feedback loop is only useful if the measurements survive
//! the thing databases do most reliably: crash. A [`FeedbackStore`]
//! persists every harvested [`FeedbackReport`] — together with the
//! epoch stamps that make staleness checking possible after restart —
//! through an append-only, CRC-framed write-ahead log:
//!
//! ```text
//! feedback.wal   frame*            appended on every absorb, fsync'd
//! feedback.snap  magic ++ frame*   rewritten atomically on compaction
//!
//! frame := [len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! Every payload begins with a monotone sequence number, so recovery
//! can merge snapshot and WAL without double-absorbing a report even if
//! a crash lands *between* the snapshot rename and the WAL truncation.
//! Recovery is byte-for-byte deterministic: frames are replayed until
//! the first torn one (short header, implausible length, short payload,
//! CRC mismatch, or an undecodable payload), and the WAL is truncated
//! back to the last fully-framed record. A torn tail therefore never
//! poisons later appends, and reopening the same bytes always yields
//! the same records.
//!
//! Torn writes themselves can be injected through the storage layer's
//! [`FaultPlan`] (the WAL is addressed as a pseudo-table), which is how
//! the crash-recovery tests exercise mid-append power loss without
//! actual power loss.

use pf_common::{Error, PageId, Result, TableId};
use pf_feedback::{DpcMeasurement, FeedbackReport, Mechanism};
use pf_optimizer::{EpochStamp, HintSet, StalenessDecision, StalenessPolicy, TableEpochState};
use pf_storage::{crc32, ErrorFault, FaultPlan};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Environment variable naming the directory a feedback store should
/// live in (used by the repro binaries and the CLI).
pub const FEEDBACK_DIR_ENV: &str = "PF_FEEDBACK_DIR";

/// WAL file name inside the store directory.
const WAL_FILE: &str = "feedback.wal";
/// Snapshot file name inside the store directory.
const SNAP_FILE: &str = "feedback.snap";
/// Snapshot magic + format version.
const SNAP_MAGIC: &[u8; 8] = b"PFFEED\x01\x00";
/// Upper bound on a single frame payload; lengths beyond this are torn
/// garbage, not data (guards allocation on corrupt length bytes).
const MAX_PAYLOAD: usize = 1 << 26;
/// Strings longer than this are corrupt, not data.
const MAX_STR: usize = 1 << 20;
/// The pseudo-table the WAL occupies in a [`FaultPlan`]'s address
/// space; appends are "pages" of this table, keyed by sequence number.
const WAL_FAULT_TABLE: TableId = TableId(u32::MAX);
/// The pseudo-table snapshot compactions occupy (disjoint from the WAL
/// site space); each compaction is keyed by the store's next sequence
/// number at the time.
const SNAP_FAULT_TABLE: TableId = TableId(u32::MAX - 1);

fn io_err(e: std::io::Error) -> Error {
    Error::InvalidArgument(format!("feedback store I/O: {e}"))
}

/// One persisted feedback report with its harvest-time epoch stamps.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredReport {
    /// Monotone sequence number (dedup key across snapshot + WAL).
    pub seq: u64,
    /// The harvested report.
    pub report: FeedbackReport,
    /// Modification state of each involved table at harvest time.
    pub stamps: HashMap<String, EpochStamp>,
}

/// Size and shape of a store, for the CLI's `.feedback stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Recovered + appended reports currently live.
    pub records: usize,
    /// Total measurements across live reports.
    pub measurements: usize,
    /// Bytes in the WAL file.
    pub wal_bytes: u64,
    /// Bytes in the snapshot file (0 when never compacted).
    pub snapshot_bytes: u64,
    /// Next sequence number an append would take.
    pub next_seq: u64,
}

// ---------------------------------------------------------------------
// payload codec
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one record as a frame payload (no frame header).
fn encode_record(rec: &StoredReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&rec.seq.to_le_bytes());
    // Stamps in sorted table order: the encoding of a record is a
    // function of its value, never of hash-map iteration order.
    let mut stamps: Vec<(&String, &EpochStamp)> = rec.stamps.iter().collect();
    stamps.sort_by_key(|(t, _)| t.as_str());
    out.extend_from_slice(&(stamps.len() as u32).to_le_bytes());
    for (table, stamp) in stamps {
        put_str(&mut out, table);
        out.extend_from_slice(&stamp.epoch.to_le_bytes());
        out.extend_from_slice(&stamp.dirty_pages.to_le_bytes());
    }
    out.extend_from_slice(&(rec.report.measurements.len() as u32).to_le_bytes());
    for m in &rec.report.measurements {
        put_str(&mut out, &m.table);
        put_str(&mut out, &m.expression);
        match m.estimated {
            Some(est) => {
                out.push(1);
                out.extend_from_slice(&est.to_le_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&m.actual.to_le_bytes());
        match m.mechanism {
            Mechanism::ExactScan => out.push(0),
            Mechanism::LinearCounting => out.push(1),
            Mechanism::PageSampling(frac) => {
                out.push(2);
                out.extend_from_slice(&frac.to_le_bytes());
            }
            Mechanism::BitVector(bits) => {
                out.push(3);
                out.extend_from_slice(&bits.to_le_bytes());
            }
        }
        out.push(u8::from(m.degraded));
        out.extend_from_slice(&m.skipped_pages.to_le_bytes());
        out.push(u8::from(m.budget_shed));
    }
    out
}

/// Byte cursor over a frame payload; every getter returns `None` on
/// exhaustion — an undecodable payload is a torn frame, not a panic.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        if len > MAX_STR {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }
}

/// Decodes one frame payload; `None` means torn/corrupt.
fn decode_record(payload: &[u8]) -> Option<StoredReport> {
    let mut c = Cur {
        buf: payload,
        pos: 0,
    };
    let seq = c.u64()?;
    let stamp_count = c.u32()? as usize;
    if stamp_count > payload.len() {
        return None;
    }
    let mut stamps = HashMap::with_capacity(stamp_count);
    for _ in 0..stamp_count {
        let table = c.str()?;
        let epoch = c.u64()?;
        let dirty_pages = c.u64()?;
        stamps.insert(table, EpochStamp { epoch, dirty_pages });
    }
    let m_count = c.u32()? as usize;
    if m_count > payload.len() {
        return None;
    }
    let mut report = FeedbackReport::new();
    for _ in 0..m_count {
        let table = c.str()?;
        let expression = c.str()?;
        let estimated = match c.u8()? {
            0 => None,
            1 => Some(c.f64()?),
            _ => return None,
        };
        let actual = c.f64()?;
        let mechanism = match c.u8()? {
            0 => Mechanism::ExactScan,
            1 => Mechanism::LinearCounting,
            2 => Mechanism::PageSampling(c.f64()?),
            3 => Mechanism::BitVector(c.u64()?),
            _ => return None,
        };
        let degraded = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let skipped_pages = c.u64()?;
        let budget_shed = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        report.push(DpcMeasurement {
            table,
            expression,
            estimated,
            actual,
            mechanism,
            degraded,
            skipped_pages,
            budget_shed,
        });
    }
    if c.pos != payload.len() {
        // Trailing bytes: the length field and the payload disagree —
        // corrupt, not merely short.
        return None;
    }
    Some(StoredReport {
        seq,
        report,
        stamps,
    })
}

/// Wraps a payload in a `[len][crc][payload]` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Scans `bytes` frame-by-frame from `start`, appending decoded records
/// to `out`; returns the offset one past the last *valid* frame. Stops
/// (without error) at the first torn frame.
fn replay_frames(bytes: &[u8], start: usize, out: &mut Vec<StoredReport>) -> usize {
    let mut pos = start;
    loop {
        let Some(header) = bytes.get(pos..pos + 8) else {
            return pos; // short header → torn tail
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4-byte slice")) as usize;
        let want_crc = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
        if len > MAX_PAYLOAD {
            return pos; // implausible length → corrupt length bytes
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            return pos; // short payload → torn tail
        };
        if crc32(payload) != want_crc {
            return pos; // bit rot or torn sector inside the payload
        }
        let Some(rec) = decode_record(payload) else {
            return pos; // CRC ok but undecodable: treat as torn
        };
        out.push(rec);
        pos += 8 + len;
    }
}

// ---------------------------------------------------------------------
// the store
// ---------------------------------------------------------------------

/// Append-only durable store for harvested feedback reports.
///
/// All reads are served from memory (the store is tiny next to the
/// data it describes); the WAL and snapshot exist purely so that a
/// crash at any byte loses at most the report being appended.
#[derive(Debug)]
pub struct FeedbackStore {
    dir: PathBuf,
    wal: File,
    records: Vec<StoredReport>,
    next_seq: u64,
    fault_plan: Option<FaultPlan>,
    /// Set after an injected torn write: the in-memory state and the
    /// file have diverged exactly as in a crash, so further appends are
    /// refused until the store is reopened (recovered).
    torn: bool,
}

impl FeedbackStore {
    /// Opens (or creates) the store in `dir`, recovering all records
    /// from the snapshot and the WAL. Torn WAL tails are truncated
    /// away; duplicate sequence numbers (a crash between snapshot
    /// rename and WAL truncation) are dropped.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err)?;

        let mut records = Vec::new();
        let snap_path = dir.join(SNAP_FILE);
        if snap_path.exists() {
            let bytes = std::fs::read(&snap_path).map_err(io_err)?;
            if bytes.len() < SNAP_MAGIC.len() || &bytes[..SNAP_MAGIC.len()] != SNAP_MAGIC {
                return Err(Error::InvalidArgument(format!(
                    "{} is not a feedback snapshot",
                    snap_path.display()
                )));
            }
            // The snapshot was published by an atomic rename, so a torn
            // tail here is bit rot; recover the valid prefix.
            replay_frames(&bytes, SNAP_MAGIC.len(), &mut records);
        }
        let max_snap_seq = records.last().map(|r| r.seq);

        let wal_path = dir.join(WAL_FILE);
        if wal_path.exists() {
            let bytes = std::fs::read(&wal_path).map_err(io_err)?;
            let mut wal_records = Vec::new();
            let valid_len = replay_frames(&bytes, 0, &mut wal_records);
            if valid_len < bytes.len() {
                // Truncate the torn tail so the next append lands on a
                // frame boundary.
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(io_err)?;
                f.set_len(valid_len as u64).map_err(io_err)?;
                f.sync_data().map_err(io_err)?;
            }
            // Skip WAL frames already captured by the snapshot.
            records.extend(
                wal_records
                    .into_iter()
                    .filter(|r| max_snap_seq.is_none_or(|s| r.seq > s)),
            );
        }

        let next_seq = records.last().map_or(0, |r| r.seq + 1);
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(io_err)?;
        Ok(FeedbackStore {
            dir,
            wal,
            records,
            next_seq,
            fault_plan: None,
            torn: false,
        })
    }

    /// Opens the store named by [`FEEDBACK_DIR_ENV`], if set.
    pub fn from_env() -> Result<Option<Self>> {
        match std::env::var(FEEDBACK_DIR_ENV) {
            Ok(dir) if !dir.trim().is_empty() => Ok(Some(Self::open(dir.trim())?)),
            _ => Ok(None),
        }
    }

    /// Installs (or clears) a fault plan used to inject torn writes
    /// into WAL appends and — when the plan has error returns enabled —
    /// ENOSPC, failed fsync, and failed rename into appends and
    /// compactions: the crash-recovery tests' power switch.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// All live records, in sequence order.
    pub fn records(&self) -> &[StoredReport] {
        &self.records
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one report (with its epoch stamps) to the WAL, fsync'd
    /// before the in-memory state is updated. Returns the record's
    /// sequence number.
    ///
    /// Under an installed fault plan, an append may instead suffer a
    /// torn write: a strict prefix of the frame reaches the file, the
    /// call fails, and the store refuses further appends until it is
    /// reopened — exactly the contract of a crash mid-append.
    pub fn append(
        &mut self,
        report: &FeedbackReport,
        stamps: &HashMap<String, EpochStamp>,
    ) -> Result<u64> {
        if self.torn {
            return Err(Error::InvalidArgument(
                "feedback store suffered a torn write; reopen to recover".into(),
            ));
        }
        let seq = self.next_seq;
        let rec = StoredReport {
            seq,
            report: report.clone(),
            stamps: stamps.clone(),
        };
        let bytes = frame(&encode_record(&rec));
        if let Some(plan) = &self.fault_plan {
            let site = PageId(seq as u32);
            if plan
                .fault_for(WAL_FAULT_TABLE, site)
                .is_some_and(|k| k.corrupts())
            {
                // Simulated power loss mid-append: a strict prefix of
                // the frame hits the disk.
                let keep = (plan.entropy_for(WAL_FAULT_TABLE, site) as usize) % bytes.len();
                self.wal.write_all(&bytes[..keep]).map_err(io_err)?;
                self.wal.sync_data().map_err(io_err)?;
                self.torn = true;
                return Err(Error::StorageFull {
                    what: format!(
                        "torn write injected at seq {seq} ({keep} of {} bytes)",
                        bytes.len()
                    ),
                });
            }
            match plan.error_fault_for(WAL_FAULT_TABLE, site) {
                Some(ErrorFault::WriteNoSpace) => {
                    // ENOSPC mid-frame: the write syscall fails after a
                    // strict prefix lands. The frame is not
                    // acknowledged; recovery truncates the tail.
                    let keep = (plan.entropy_for(WAL_FAULT_TABLE, site) as usize) % bytes.len();
                    self.wal.write_all(&bytes[..keep]).map_err(io_err)?;
                    self.wal.sync_data().map_err(io_err)?;
                    self.torn = true;
                    return Err(Error::StorageFull {
                        what: format!(
                            "WAL append hit ENOSPC at seq {seq} ({keep} of {} bytes)",
                            bytes.len()
                        ),
                    });
                }
                Some(ErrorFault::FsyncFailed) => {
                    // The frame reached the file but fsync failed: it
                    // may or may not be durable, so it must not be
                    // acknowledged. Reopening resolves the ambiguity
                    // deterministically (the complete frame replays).
                    self.wal.write_all(&bytes).map_err(io_err)?;
                    self.torn = true;
                    return Err(Error::StorageFull {
                        what: format!("WAL fsync failed at seq {seq}"),
                    });
                }
                _ => {}
            }
        }
        self.wal.write_all(&bytes).map_err(io_err)?;
        self.wal.sync_data().map_err(io_err)?;
        self.next_seq += 1;
        self.records.push(rec);
        Ok(seq)
    }

    /// Rewrites the snapshot from the live records (write-temp, fsync,
    /// atomic rename) and truncates the WAL. A crash before the rename
    /// leaves the old snapshot + full WAL; a crash between rename and
    /// truncation leaves duplicates that recovery drops by sequence
    /// number — no interleaving loses a record.
    pub fn compact(&mut self) -> Result<()> {
        if self.torn {
            return Err(Error::InvalidArgument(
                "feedback store suffered a torn write; reopen to recover".into(),
            ));
        }
        let tmp_path = self.dir.join("feedback.snap.tmp");
        let snap_path = self.dir.join(SNAP_FILE);
        // Error-return injection for this compaction. Every injected
        // crash point leaves the previous snapshot and the full WAL
        // intact (recovery ignores the stray temp file), so nothing
        // acknowledged is ever lost.
        let injected = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.error_fault_for(SNAP_FAULT_TABLE, PageId(self.next_seq as u32)));
        {
            let mut tmp = File::create(&tmp_path).map_err(io_err)?;
            tmp.write_all(SNAP_MAGIC).map_err(io_err)?;
            for (i, rec) in self.records.iter().enumerate() {
                if injected == Some(ErrorFault::WriteNoSpace) && i == self.records.len() / 2 {
                    return Err(Error::StorageFull {
                        what: format!("snapshot write hit ENOSPC after {i} record(s)"),
                    });
                }
                tmp.write_all(&frame(&encode_record(rec))).map_err(io_err)?;
            }
            if injected == Some(ErrorFault::FsyncFailed) {
                return Err(Error::StorageFull {
                    what: "snapshot fsync failed".into(),
                });
            }
            tmp.sync_data().map_err(io_err)?;
        }
        if injected == Some(ErrorFault::RenameFailed) {
            return Err(Error::StorageFull {
                what: "snapshot rename failed".into(),
            });
        }
        std::fs::rename(&tmp_path, &snap_path).map_err(io_err)?;
        self.wal.set_len(0).map_err(io_err)?;
        self.wal.sync_data().map_err(io_err)?;
        Ok(())
    }

    /// Replays every live record into `hints` (stamped absorption, so
    /// `budget_shed` measurements are skipped and staleness can be
    /// applied afterwards).
    pub fn replay_into(&self, hints: &mut HintSet) {
        for rec in &self.records {
            hints.absorb_report_stamped(&rec.report, &rec.stamps);
        }
    }

    /// Drops every stored measurement the staleness policy would evict
    /// against the tables' current modification state, then compacts so
    /// the eviction is durable. Returns the number of measurements
    /// dropped. Reports left without measurements are removed whole.
    pub fn evict_stale(
        &mut self,
        policy: StalenessPolicy,
        states: &HashMap<String, TableEpochState>,
    ) -> Result<usize> {
        let mut dropped = 0usize;
        for rec in &mut self.records {
            let stamps = &rec.stamps;
            rec.report.measurements.retain(|m| {
                let (Some(stamp), Some(state)) = (stamps.get(&m.table), states.get(&m.table))
                else {
                    return true;
                };
                if policy.decide(*stamp, *state) == StalenessDecision::Evicted {
                    dropped += 1;
                    false
                } else {
                    true
                }
            });
        }
        self.records.retain(|r| !r.report.measurements.is_empty());
        if dropped > 0 {
            self.compact()?;
        }
        Ok(dropped)
    }

    /// Size and shape of the store right now.
    pub fn stats(&self) -> StoreStats {
        let file_len = |name: &str| {
            std::fs::metadata(self.dir.join(name))
                .map(|m| m.len())
                .unwrap_or(0)
        };
        StoreStats {
            records: self.records.len(),
            measurements: self
                .records
                .iter()
                .map(|r| r.report.measurements.len())
                .sum(),
            wal_bytes: file_len(WAL_FILE),
            snapshot_bytes: file_len(SNAP_FILE),
            next_seq: self.next_seq,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pagefeed-fbstore-{name}-{}", std::process::id()))
    }

    fn fresh(name: &str) -> PathBuf {
        let dir = tmp(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report(tag: u64) -> (FeedbackReport, HashMap<String, EpochStamp>) {
        let mut report = FeedbackReport::new();
        report.push(DpcMeasurement {
            table: "sales".into(),
            expression: format!("state='S{tag}'"),
            estimated: Some(4_000.0 + tag as f64),
            actual: 120.0 + tag as f64,
            mechanism: Mechanism::ExactScan,
            degraded: false,
            skipped_pages: 0,
            budget_shed: false,
        });
        report.push(DpcMeasurement {
            table: "orders".into(),
            expression: format!("qty<{tag}"),
            estimated: None,
            actual: 7.0,
            mechanism: Mechanism::PageSampling(0.25),
            degraded: true,
            skipped_pages: 3,
            budget_shed: tag % 2 == 1,
        });
        let mut stamps = HashMap::new();
        stamps.insert(
            "sales".to_string(),
            EpochStamp {
                epoch: tag,
                dirty_pages: tag * 2,
            },
        );
        (report, stamps)
    }

    #[test]
    fn append_reopen_round_trips() {
        let dir = fresh("roundtrip");
        let mut expected = Vec::new();
        {
            let mut store = FeedbackStore::open(&dir).expect("open fresh");
            assert!(store.is_empty());
            for tag in 0..5 {
                let (report, stamps) = sample_report(tag);
                let seq = store.append(&report, &stamps).expect("append");
                assert_eq!(seq, tag);
                expected.push(StoredReport {
                    seq,
                    report,
                    stamps,
                });
            }
        }
        let store = FeedbackStore::open(&dir).expect("reopen");
        assert_eq!(store.records(), expected.as_slice());
        assert_eq!(store.stats().next_seq, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_framed_prefix() {
        let dir = fresh("fuzz");
        let mut frame_ends = vec![0usize]; // valid prefixes end on frame boundaries
        {
            let mut store = FeedbackStore::open(&dir).expect("open fresh");
            for tag in 0..4 {
                let (report, stamps) = sample_report(tag);
                store.append(&report, &stamps).expect("append");
                frame_ends.push(
                    std::fs::metadata(dir.join(WAL_FILE))
                        .expect("wal exists")
                        .len() as usize,
                );
            }
        }
        let bytes = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
        assert_eq!(*frame_ends.last().expect("non-empty"), bytes.len());

        let cut_dir = fresh("fuzz-cut");
        for cut in 0..=bytes.len() {
            let _ = std::fs::remove_dir_all(&cut_dir);
            std::fs::create_dir_all(&cut_dir).expect("mk cut dir");
            std::fs::write(cut_dir.join(WAL_FILE), &bytes[..cut]).expect("write prefix");
            let store = FeedbackStore::open(&cut_dir).expect("recovery must not fail");
            let whole_frames = frame_ends.iter().filter(|&&e| e <= cut).count() - 1;
            assert_eq!(
                store.len(),
                whole_frames,
                "cut at byte {cut}: expected {whole_frames} records"
            );
            // The torn tail is gone from disk too: reopening is stable.
            let on_disk = std::fs::metadata(cut_dir.join(WAL_FILE))
                .expect("wal exists")
                .len() as usize;
            assert_eq!(on_disk, frame_ends[whole_frames]);
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&cut_dir);
    }

    #[test]
    fn flipped_byte_truncates_from_the_damaged_frame() {
        let dir = fresh("bitrot");
        {
            let mut store = FeedbackStore::open(&dir).expect("open fresh");
            for tag in 0..3 {
                let (report, stamps) = sample_report(tag);
                store.append(&report, &stamps).expect("append");
            }
        }
        let wal = dir.join(WAL_FILE);
        let mut bytes = std::fs::read(&wal).expect("read wal");
        // Damage a byte inside the second frame's payload.
        let mut probe = Vec::new();
        let first_end = {
            let end = replay_frames(&bytes[..], 0, &mut probe);
            assert_eq!(probe.len(), 3);
            let mut one = Vec::new();
            let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
            let first = 8 + len;
            assert!(first < end);
            replay_frames(&bytes[..first], 0, &mut one);
            first
        };
        bytes[first_end + 10] ^= 0x40;
        std::fs::write(&wal, &bytes).expect("write damaged wal");
        let store = FeedbackStore::open(&dir).expect("recover");
        assert_eq!(store.len(), 1, "frames after the damage are discarded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_dedups_even_if_wal_truncation_is_lost() {
        let dir = fresh("compact");
        let mut store = FeedbackStore::open(&dir).expect("open fresh");
        for tag in 0..3 {
            let (report, stamps) = sample_report(tag);
            store.append(&report, &stamps).expect("append");
        }
        let wal_before = std::fs::read(dir.join(WAL_FILE)).expect("read wal");
        store.compact().expect("compact");
        assert_eq!(store.stats().wal_bytes, 0);
        assert!(store.stats().snapshot_bytes > 0);

        // Simulate a crash *between* the snapshot rename and the WAL
        // truncation: the old WAL bytes come back.
        std::fs::write(dir.join(WAL_FILE), &wal_before).expect("restore wal");
        drop(store);
        let store = FeedbackStore::open(&dir).expect("reopen");
        assert_eq!(store.len(), 3, "duplicates dropped by sequence number");
        assert_eq!(store.stats().next_seq, 3);

        // Appends after compaction land in the WAL and survive reopen.
        drop(store);
        let mut store = FeedbackStore::open(&dir).expect("reopen again");
        let (report, stamps) = sample_report(9);
        store.append(&report, &stamps).expect("append post-compact");
        drop(store);
        let store = FeedbackStore::open(&dir).expect("final reopen");
        assert_eq!(store.len(), 4);
        assert_eq!(store.records()[3].seq, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_fault_loses_only_the_in_flight_record() {
        let dir = fresh("torn");
        let mut store = FeedbackStore::open(&dir).expect("open fresh");
        for tag in 0..3 {
            let (report, stamps) = sample_report(tag);
            store.append(&report, &stamps).expect("append");
        }
        // Every site faults at rate 1.0 (corrupting kinds are 3 of 4
        // draws; find a seed whose site 3 corrupts).
        let plan = (0..64u64)
            .map(|seed| FaultPlan::new(seed, 1.0).expect("valid plan"))
            .find(|p| {
                p.fault_for(WAL_FAULT_TABLE, PageId(3))
                    .is_some_and(|k| k.corrupts())
            })
            .expect("some seed corrupts site 3");
        store.set_fault_plan(Some(plan));
        let (report, stamps) = sample_report(3);
        let err = store.append(&report, &stamps).expect_err("torn write");
        assert!(err.to_string().contains("torn write"), "{err}");
        // The store is poisoned until reopened, like a crashed process.
        assert!(store.append(&report, &stamps).is_err());
        assert!(store.compact().is_err());
        drop(store);

        let store = FeedbackStore::open(&dir).expect("recover");
        assert_eq!(store.len(), 3, "only the in-flight record is lost");
        assert_eq!(store.stats().next_seq, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A rate-1.0 error-return plan (no byte damage) whose draw at
    /// `site` of `table` is the wanted kind.
    fn error_plan_hitting(table: TableId, site: u32, wanted: ErrorFault) -> FaultPlan {
        (0..256u64)
            .map(|seed| {
                FaultPlan::new(seed, 0.0)
                    .and_then(|p| p.with_error_returns(1.0))
                    .expect("valid plan")
            })
            .find(|p| p.error_fault_for(table, PageId(site)) == Some(wanted))
            .expect("some seed draws the wanted error kind")
    }

    #[test]
    fn enospc_append_is_typed_and_never_acknowledges_the_partial_frame() {
        let dir = fresh("enospc");
        let mut store = FeedbackStore::open(&dir).expect("open fresh");
        for tag in 0..3 {
            let (report, stamps) = sample_report(tag);
            store.append(&report, &stamps).expect("append");
        }
        store.set_fault_plan(Some(error_plan_hitting(
            WAL_FAULT_TABLE,
            3,
            ErrorFault::WriteNoSpace,
        )));
        let (report, stamps) = sample_report(3);
        let err = store.append(&report, &stamps).expect_err("ENOSPC");
        assert!(
            matches!(err, Error::StorageFull { .. }),
            "typed storage-full error, got {err:?}"
        );
        assert!(err.to_string().contains("ENOSPC"), "{err}");
        assert_eq!(store.len(), 3, "partial frame never absorbed");
        // Poisoned like a crashed process until reopened.
        assert!(store.append(&report, &stamps).is_err());
        drop(store);

        let store = FeedbackStore::open(&dir).expect("recover");
        assert_eq!(store.len(), 3, "only the unacknowledged frame is lost");
        assert_eq!(store.stats().next_seq, 3);
        let wal_once = std::fs::read(dir.join(WAL_FILE)).expect("wal");
        drop(store);
        let store = FeedbackStore::open(&dir).expect("recover again");
        assert_eq!(store.len(), 3);
        let wal_twice = std::fs::read(dir.join(WAL_FILE)).expect("wal");
        assert_eq!(wal_once, wal_twice, "recovery is byte-deterministic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_fsync_refuses_to_acknowledge_but_recovery_is_deterministic() {
        let dir = fresh("fsync");
        let mut store = FeedbackStore::open(&dir).expect("open fresh");
        for tag in 0..2 {
            let (report, stamps) = sample_report(tag);
            store.append(&report, &stamps).expect("append");
        }
        store.set_fault_plan(Some(error_plan_hitting(
            WAL_FAULT_TABLE,
            2,
            ErrorFault::FsyncFailed,
        )));
        let (report, stamps) = sample_report(2);
        let err = store.append(&report, &stamps).expect_err("fsync fails");
        assert!(matches!(err, Error::StorageFull { .. }), "{err:?}");
        assert!(err.to_string().contains("fsync"), "{err}");
        assert_eq!(store.len(), 2, "unsynced frame not acknowledged");
        drop(store);

        // The frame reached the file; recovery resolves the ambiguity
        // the same way every time: the complete frame replays.
        let store = FeedbackStore::open(&dir).expect("recover");
        assert_eq!(store.len(), 3);
        assert_eq!(store.stats().next_seq, 3);
        let wal_once = std::fs::read(dir.join(WAL_FILE)).expect("wal");
        drop(store);
        let store = FeedbackStore::open(&dir).expect("recover again");
        assert_eq!(store.len(), 3);
        assert_eq!(
            wal_once,
            std::fs::read(dir.join(WAL_FILE)).expect("wal"),
            "recovery is byte-deterministic"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_crash_points_never_lose_acknowledged_frames() {
        for kind in [
            ErrorFault::WriteNoSpace,
            ErrorFault::FsyncFailed,
            ErrorFault::RenameFailed,
        ] {
            let dir = fresh(&format!("compact-{kind}"));
            let mut store = FeedbackStore::open(&dir).expect("open fresh");
            let mut expected = Vec::new();
            for tag in 0..3 {
                let (report, stamps) = sample_report(tag);
                let seq = store.append(&report, &stamps).expect("append");
                expected.push(StoredReport {
                    seq,
                    report,
                    stamps,
                });
            }
            store.set_fault_plan(Some(error_plan_hitting(SNAP_FAULT_TABLE, 3, kind)));
            let err = store.compact().expect_err("injected compaction failure");
            assert!(matches!(err, Error::StorageFull { .. }), "{kind}: {err:?}");
            // The failed compaction is not a crash: the store stays
            // usable, and nothing durable moved.
            assert_eq!(store.records(), expected.as_slice());
            drop(store);

            let store = FeedbackStore::open(&dir).expect("recover (tmp file ignored)");
            assert_eq!(store.records(), expected.as_slice(), "{kind}");
            assert_eq!(store.stats().next_seq, 3);
            drop(store);

            // Healing the plan lets the same compaction land.
            let mut store = FeedbackStore::open(&dir).expect("reopen");
            store.set_fault_plan(None);
            store.compact().expect("compact after heal");
            assert_eq!(store.stats().wal_bytes, 0);
            drop(store);
            let store = FeedbackStore::open(&dir).expect("post-compact reopen");
            assert_eq!(store.records(), expected.as_slice(), "{kind}");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn replay_into_hints_skips_shed_measurements() {
        let dir = fresh("replay");
        let mut store = FeedbackStore::open(&dir).expect("open fresh");
        let (report, stamps) = sample_report(1); // tag 1 → orders shed
        store.append(&report, &stamps).expect("append");
        let mut hints = HintSet::new();
        store.replay_into(&mut hints);
        assert_eq!(hints.dpc("sales", "state='S1'"), Some(121.0));
        assert_eq!(hints.dpc("orders", "qty<1"), None, "shed not absorbed");
        let hint = hints.dpc_hint("sales", "state='S1'").expect("stamped");
        assert_eq!(
            hint.stamp,
            Some(EpochStamp {
                epoch: 1,
                dirty_pages: 2
            })
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evict_stale_drops_dead_measurements_durably() {
        let dir = fresh("evict");
        let mut store = FeedbackStore::open(&dir).expect("open fresh");
        let (report, mut stamps) = sample_report(0);
        stamps.insert(
            "orders".to_string(),
            EpochStamp {
                epoch: 0,
                dirty_pages: 0,
            },
        );
        store.append(&report, &stamps).expect("append");

        let mut states = HashMap::new();
        // sales barely drifted; orders half-rewritten.
        states.insert(
            "sales".to_string(),
            TableEpochState {
                epoch: 1,
                dirty_pages: 1,
                pages: 100,
            },
        );
        states.insert(
            "orders".to_string(),
            TableEpochState {
                epoch: 5,
                dirty_pages: 50,
                pages: 100,
            },
        );
        let dropped = store
            .evict_stale(StalenessPolicy::default(), &states)
            .expect("evict");
        assert_eq!(dropped, 1);
        assert_eq!(store.stats().measurements, 1);
        drop(store);
        let store = FeedbackStore::open(&dir).expect("reopen");
        assert_eq!(store.stats().measurements, 1, "eviction survived restart");
        assert_eq!(store.records()[0].report.measurements[0].table, "sales");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_snapshot_file_is_rejected() {
        let dir = fresh("badmagic");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join(SNAP_FILE), b"not a snapshot").expect("write junk");
        assert!(FeedbackStore::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_env_without_variable_is_none() {
        // Tests run threaded: only the unset path is exercised (no env
        // mutation), mirroring parallel.rs's from_env test.
        if std::env::var(FEEDBACK_DIR_ENV).is_err() {
            assert!(FeedbackStore::from_env().expect("no store").is_none());
        }
    }
}
