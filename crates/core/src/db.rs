//! The [`Database`] facade.

use crate::feedback_store::FeedbackStore;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::planner::{LoweredPlan, MonitorConfig, OptimizedQuery, PlanChoice, Planner};
use crate::query::Query;
use pf_common::{Error, IndexId, PageId, Result, Row, Schema, TableId};
use pf_exec::monitor::ScanMonitorPartial;
use pf_exec::scan::SeqScan;
use pf_exec::{drain, Conjunction, ExecContext};
use pf_feedback::FeedbackReport;
use pf_optimizer::{
    CostModel, DbStats, EpochStamp, HintSet, Optimizer, SingleTablePlan, StalenessPolicy,
    TableEpochState,
};
use pf_storage::{Catalog, DiskModel, FaultPlan, IoStats, TableBuilder};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;

/// How many times a transient fault (an injected read stall) is retried
/// before the error surfaces. Stall budgets are at most 2 attempts per
/// site, so this always clears an injected stall.
pub const MAX_TRANSIENT_RETRIES: u32 = 3;

/// Everything one run of a query produced.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The aggregate result (`COUNT`).
    pub count: u64,
    /// Raw executor counters.
    pub stats: IoStats,
    /// Simulated elapsed time (cold cache).
    pub elapsed_ms: f64,
    /// Harvested DPC measurements (empty when monitoring was off).
    pub report: FeedbackReport,
    /// Human-readable plan description.
    pub description: String,
    /// The optimizer decision that ran.
    pub choice: PlanChoice,
    /// How many transient-fault retries this outcome absorbed (0 in a
    /// fault-free run).
    pub fault_retries: u32,
}

impl QueryOutcome {
    /// Whether execution skipped corrupt pages: the count and every DPC
    /// measurement are then lower bounds over the readable fraction.
    pub fn degraded(&self) -> bool {
        self.stats.pages_skipped > 0 || self.report.is_degraded()
    }
}

/// The shared description of a scan that will execute as page-range
/// morsels: the winning plan, its resolved predicate, and the full page
/// range. Plain data (no monitor handles), so it can be captured by
/// reference from every worker thread.
#[derive(Debug, Clone)]
pub struct MorselScan {
    /// The winning sequential-scan plan.
    pub plan: SingleTablePlan,
    /// The resolved predicate all morsels filter with.
    pub pred: Conjunction,
    /// `[first, last)` pages the whole scan covers.
    pub page_range: (u32, u32),
    /// Whether the scan's first page access pays a random (positioning)
    /// I/O — true for clustered range scans; morsel 0 inherits it.
    pub first_random: bool,
}

/// An embedded analytical database with page-count execution feedback.
///
/// Owns the catalog, per-column statistics, the persistent hint set (the
/// "feedback cache" of Section II-C), and the execution configuration.
pub struct Database {
    catalog: Catalog,
    stats: Option<DbStats>,
    hints: HintSet,
    /// Self-tuning DPC-histogram cache (None = disabled).
    pub(crate) dpc_cache: Option<crate::histogram_cache::DpcHistogramCache>,
    /// Durable feedback persistence (None = in-memory hints only).
    feedback_store: Option<FeedbackStore>,
    /// Memoized optimizer decisions, invalidated on anything that can
    /// change a plan (`PF_PLAN_CACHE=off` disables).
    plan_cache: PlanCache,
    /// How stamped hints are aged as DML drifts their tables.
    pub staleness: StalenessPolicy,
    /// Disk-model constants used for costing *and* execution accounting.
    pub disk: DiskModel,
    /// Buffer-pool capacity in pages for each execution.
    pub pool_pages: usize,
}

impl Database {
    /// A database with the default disk model and a 64 Ki-page pool
    /// (512 MB at 8 KB/page — large enough that within-query re-fetches
    /// never occur at our scales, matching the paper's setup).
    pub fn new() -> Self {
        let mut catalog = Catalog::new();
        // Fault injection is opt-in via PF_FAULT_RATE / PF_FAULT_SEED:
        // unset, this is None and every code path below is fault-free.
        catalog.set_fault_plan(FaultPlan::from_env());
        Database {
            catalog,
            stats: None,
            hints: HintSet::new(),
            dpc_cache: None,
            feedback_store: None,
            plan_cache: PlanCache::from_env(),
            staleness: StalenessPolicy::default(),
            disk: DiskModel::default(),
            pool_pages: 65_536,
        }
    }

    /// A database with custom disk-model constants.
    pub fn with_disk(disk: DiskModel) -> Self {
        Database {
            disk,
            ..Self::new()
        }
    }

    /// Creates (bulk-loads) a table; `clustered_on` names the clustering
    /// column (rows are sorted by it), `None` loads a heap in row order.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        clustered_on: Option<&str>,
    ) -> Result<TableId> {
        let mut b = TableBuilder::new(name, schema).rows(rows);
        if let Some(c) = clustered_on {
            b = b.clustered_on(c);
        }
        let id = b.register(&mut self.catalog)?;
        self.stats = None; // statistics are stale
        self.plan_cache.invalidate();
        Ok(id)
    }

    /// Creates a table from a pre-configured builder (custom page size /
    /// fill factor).
    pub fn create_table_with(&mut self, builder: TableBuilder) -> Result<TableId> {
        let id = builder.register(&mut self.catalog)?;
        self.stats = None;
        self.plan_cache.invalidate();
        Ok(id)
    }

    /// Builds a nonclustered index on `column` of `table`.
    pub fn create_index(&mut self, name: &str, table: &str, column: &str) -> Result<IndexId> {
        let id = self.catalog.table_by_name(table)?.id;
        self.plan_cache.invalidate();
        self.catalog.create_index(name, id, column)
    }

    /// Builds (or rebuilds) per-column statistics with a full scan.
    pub fn analyze(&mut self) -> Result<()> {
        self.stats = Some(DbStats::build(&self.catalog)?);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// Sets the fault-injection plan: existing tables have their
    /// deterministic share of page damage (re)materialized and tables
    /// created later inherit the plan at load. Damage is a pure function
    /// of `(seed, table, page)` over the pristine bytes, so setting the
    /// plan after loading is byte-identical to setting it before.
    /// `None` heals all injected damage. Fails if a query currently
    /// holds table storage.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<()> {
        self.catalog.install_fault_plan(plan)
    }

    /// The active fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.catalog.fault_plan()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Per-column statistics ([`Database::analyze`] must have run).
    pub fn stats(&self) -> Result<&DbStats> {
        self.stats
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument("call analyze() before optimizing".into()))
    }

    /// The persistent hint set (injected cardinalities / page counts).
    ///
    /// Handing out mutable access conservatively invalidates the plan
    /// cache: any hint edit can flip an optimizer decision.
    pub fn hints_mut(&mut self) -> &mut HintSet {
        self.plan_cache.invalidate();
        &mut self.hints
    }

    /// Read view of the hints.
    pub fn hints(&self) -> &HintSet {
        &self.hints
    }

    // ------------------------------------------------------------------
    // Durable feedback and DML epochs.
    // ------------------------------------------------------------------

    /// Attaches (opening or creating) a durable [`FeedbackStore`] at
    /// `dir`. Every recovered report is replayed into the hint set with
    /// its harvest-time epoch stamps, then aged against the tables'
    /// *current* modification state — measurements taken before heavy
    /// DML come back discounted or not at all. Returns the number of
    /// recovered reports.
    pub fn attach_feedback_store(&mut self, dir: impl AsRef<Path>) -> Result<usize> {
        let store = FeedbackStore::open(dir)?;
        let recovered = store.len();
        store.replay_into(&mut self.hints);
        let states = self.table_epoch_states();
        self.hints.apply_staleness(self.staleness, &states);
        self.feedback_store = Some(store);
        self.plan_cache.invalidate();
        Ok(recovered)
    }

    /// The attached feedback store, if any.
    pub fn feedback_store(&self) -> Option<&FeedbackStore> {
        self.feedback_store.as_ref()
    }

    /// Mutable access to the attached feedback store (compaction,
    /// eviction, stats).
    pub fn feedback_store_mut(&mut self) -> Option<&mut FeedbackStore> {
        self.feedback_store.as_mut()
    }

    /// Detaches and returns the feedback store; hints stay as absorbed.
    pub fn detach_feedback_store(&mut self) -> Option<FeedbackStore> {
        self.feedback_store.take()
    }

    /// Absorbs a harvested report into the hint set, stamping every
    /// measurement with its table's current modification epoch. When a
    /// feedback store is attached the report is made durable *first*
    /// (WAL before use): a crash after this call returns cannot lose
    /// the measurement.
    pub fn absorb_feedback(&mut self, report: &FeedbackReport) -> Result<()> {
        let stamps = self.epoch_stamps();
        if let Some(store) = &mut self.feedback_store {
            store.append(report, &stamps)?;
        }
        self.hints.absorb_report_stamped(report, &stamps);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// Current modification state of every table, keyed by name — the
    /// input to staleness decisions.
    pub fn table_epoch_states(&self) -> HashMap<String, TableEpochState> {
        self.catalog
            .tables()
            .iter()
            .map(|t| {
                let s = t.storage.epoch_state();
                (
                    t.name.clone(),
                    TableEpochState {
                        epoch: s.epoch,
                        dirty_pages: s.dirty_pages,
                        pages: s.pages,
                    },
                )
            })
            .collect()
    }

    /// Harvest-time epoch stamps for every table (the state a
    /// measurement taken *now* should carry).
    pub fn epoch_stamps(&self) -> HashMap<String, EpochStamp> {
        self.catalog
            .tables()
            .iter()
            .map(|t| {
                let s = t.storage.epoch_state();
                (
                    t.name.clone(),
                    EpochStamp {
                        epoch: s.epoch,
                        dirty_pages: s.dirty_pages,
                    },
                )
            })
            .collect()
    }

    /// Inserts a row into `table`, advancing its modification epoch.
    /// Statistics go stale (re-run [`Database::analyze`]) and stamped
    /// DPC hints are aged against the new state: drifted measurements
    /// are discounted toward the analytical estimate, dead ones are
    /// evicted.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<()> {
        let id = self.catalog.table_by_name(table)?.id;
        self.catalog.insert_row(id, row)?;
        self.after_dml()
    }

    /// Deletes every row of `table` matching `pred`, advancing its
    /// modification epoch; returns the number of rows deleted. Same
    /// statistics/hint aging as [`Database::insert_row`].
    pub fn delete_where<F>(&mut self, table: &str, pred: F) -> Result<u64>
    where
        F: FnMut(&Row) -> bool,
    {
        let id = self.catalog.table_by_name(table)?.id;
        let n = self.catalog.delete_where(id, pred)?;
        self.after_dml()?;
        Ok(n)
    }

    fn after_dml(&mut self) -> Result<()> {
        self.stats = None; // cardinality statistics are stale
        let states = self.table_epoch_states();
        self.hints.apply_staleness(self.staleness, &states);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// An optimizer over the current catalog, statistics, and hints.
    pub fn optimizer(&self) -> Result<Optimizer<'_>> {
        Ok(Optimizer::new(
            &self.catalog,
            self.stats()?,
            CostModel::with_disk(self.disk),
            &self.hints,
        ))
    }

    /// A planner over the current state.
    pub fn planner(&self) -> Result<Planner<'_>> {
        Ok(Planner::new(
            &self.catalog,
            self.stats()?,
            &self.hints,
            CostModel::with_disk(self.disk),
        ))
    }

    /// Optimizes and lowers a query without running it. Consults the
    /// DPC-histogram cache (if enabled) for expressions lacking exact
    /// feedback, and otherwise serves repeated query shapes from the
    /// plan cache (optimizer decision memoized; monitors still built
    /// fresh per call from `cfg.seed`).
    pub fn lower(&self, query: &Query, cfg: &MonitorConfig) -> Result<LoweredPlan> {
        if self.dpc_cache.is_some() {
            // Histogram-cache overlays are per-query hint sets; their
            // decisions are not cacheable under a single key.
            let hints = self.effective_hints(query)?;
            return self.lower_with(query, cfg, &hints);
        }
        let planner = self.planner()?;
        let optimized = self.optimized(query, cfg, &planner)?;
        planner.lower_optimized(&optimized, cfg)
    }

    /// The optimizer decision for `query`, served from the plan cache
    /// when possible.
    fn optimized(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        planner: &Planner<'_>,
    ) -> Result<Arc<OptimizedQuery>> {
        if !self.plan_cache.is_enabled() {
            return Ok(Arc::new(planner.optimize_query(query)?));
        }
        let key = PlanCache::key_for(query, cfg);
        if let Some(cached) = self.plan_cache.get(&key) {
            return Ok(cached);
        }
        let fresh = Arc::new(planner.optimize_query(query)?);
        self.plan_cache.insert(key, Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Plan-cache effectiveness counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Replaces the plan cache with one that is explicitly on or off —
    /// test hook and CLI escape hatch (the `PF_PLAN_CACHE` knob decides
    /// the default at construction).
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.plan_cache = PlanCache::new(enabled);
    }

    /// Optimizes and lowers a query against an explicit hint set instead
    /// of the database's own — the entry point for hermetic feedback
    /// cells, whose hint overlays must not touch shared state.
    pub fn lower_with(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        hints: &HintSet,
    ) -> Result<LoweredPlan> {
        Planner::new(
            &self.catalog,
            self.stats()?,
            hints,
            CostModel::with_disk(self.disk),
        )
        .lower_query(query, cfg)
    }

    /// Executes a lowered plan cold-cache and harvests its monitors.
    ///
    /// Single-attempt: under an active fault plan an injected read stall
    /// surfaces as a transient [`Error::ReadStalled`]. Prefer
    /// [`Database::execute_with_retry`] (or [`Database::run`], which uses
    /// it) when a fault plan may be active.
    pub fn execute(&self, plan: LoweredPlan) -> Result<QueryOutcome> {
        let mut ctx = self.make_context();
        self.execute_attempt(plan, 0, &mut ctx)
    }

    /// A fresh execution context sized and costed for this database.
    pub fn make_context(&self) -> ExecContext {
        ExecContext::with_model(self.pool_pages, self.disk)
    }

    fn execute_attempt(
        &self,
        plan: LoweredPlan,
        attempt: u32,
        ctx: &mut ExecContext,
    ) -> Result<QueryOutcome> {
        let LoweredPlan {
            mut op,
            harness,
            choice,
            description,
            explain: _,
        } = plan;
        ctx.cold_start();
        ctx.fault_attempt = attempt;
        let rows = drain(op.as_mut(), ctx)?;
        let count = rows.len() as u64;
        Ok(QueryOutcome {
            count,
            stats: ctx.stats(),
            elapsed_ms: ctx.elapsed_ms(),
            report: harness.harvest(),
            description,
            choice,
            fault_retries: attempt,
        })
    }

    /// Lowers (via `lower`) and executes, retrying the whole query —
    /// fresh plan, cold cache — when execution hits a transient fault,
    /// up to [`MAX_TRANSIENT_RETRIES`] retries. Each retry re-lowers so
    /// monitors are rebuilt from the same seeds: a run that needed
    /// retries produces byte-identical sketches to one that needed none.
    pub fn execute_with_retry(
        &self,
        lower: impl Fn() -> Result<LoweredPlan>,
    ) -> Result<QueryOutcome> {
        let mut ctx = self.make_context();
        self.execute_with_retry_in(lower, &mut ctx)
    }

    /// [`Database::execute_with_retry`] against a caller-provided
    /// context: `ctx` is cold-started per attempt, so results are
    /// byte-identical to a fresh context while its buffer-pool and
    /// residency-map allocations are reused across queries.
    pub fn execute_with_retry_in(
        &self,
        lower: impl Fn() -> Result<LoweredPlan>,
        ctx: &mut ExecContext,
    ) -> Result<QueryOutcome> {
        let mut attempt = 0;
        loop {
            match self.execute_attempt(lower()?, attempt, ctx) {
                Err(e) if e.is_transient() && attempt < MAX_TRANSIENT_RETRIES => attempt += 1,
                other => return other,
            }
        }
    }

    /// Optimizes, lowers, and executes a query in one call, absorbing
    /// transient faults via [`Database::execute_with_retry`].
    pub fn run(&self, query: &Query, cfg: &MonitorConfig) -> Result<QueryOutcome> {
        self.execute_with_retry(|| self.lower(query, cfg))
    }

    /// [`Database::run`] with a reusable context (see
    /// [`Database::execute_with_retry_in`]) — the parallel driver's
    /// per-worker hot path.
    pub fn run_in(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        ctx: &mut ExecContext,
    ) -> Result<QueryOutcome> {
        self.execute_with_retry_in(|| self.lower(query, cfg), ctx)
    }

    // ------------------------------------------------------------------
    // Intra-query morsel parallelism.
    // ------------------------------------------------------------------

    /// Decides whether `query` under `cfg` can execute as page-range
    /// morsels, returning the shared scan description if so.
    ///
    /// Eligible: a single-table count whose winning plan is a sequential
    /// scan (`FullScan` / `ClusteredRange`) of ≥ 2 pages, with no fault
    /// plan or DPC-histogram overlay active, and monitoring either off
    /// or in exact mode with no governor — exactly the configurations
    /// where per-morsel monitors consume no RNG and partials merge
    /// byte-identically to a serial scan.
    pub fn morsel_scan(&self, query: &Query, cfg: &MonitorConfig) -> Result<Option<MorselScan>> {
        if self.dpc_cache.is_some() || self.fault_plan().is_some() {
            return Ok(None);
        }
        if cfg.enabled
            && (cfg.sampling_fraction < 1.0
                || cfg.memory_budget.is_some()
                || cfg.deadline_ms.is_some())
        {
            return Ok(None);
        }
        let planner = self.planner()?;
        let optimized = self.optimized(query, cfg, &planner)?;
        let OptimizedQuery::Single { plan, pred } = &*optimized else {
            return Ok(None);
        };
        let Some((page_range, first_random)) = planner.scan_page_range(plan, pred)? else {
            return Ok(None);
        };
        if page_range.1.saturating_sub(page_range.0) < 2 {
            return Ok(None);
        }
        if let Some(set) = planner.scan_monitor_set(plan, pred, cfg)? {
            // Defense in depth: the config checks above already exclude
            // sampled/governed sets, and plain scans never carry
            // semi-join monitors.
            if !set.supports_partition() {
                return Ok(None);
            }
        }
        Ok(Some(MorselScan {
            plan: plan.clone(),
            pred: pred.clone(),
            page_range,
            first_random,
        }))
    }

    /// Runs one morsel of a partitioned scan: a private scan over
    /// `page_range` with its own freshly built (identically configured)
    /// monitor set, reusing `ctx`. Returns the morsel's row count, I/O
    /// counters, and finished monitor partial for the coordinator to
    /// merge in morsel order.
    pub fn run_morsel(
        &self,
        scan: &MorselScan,
        cfg: &MonitorConfig,
        page_range: (u32, u32),
        first_random: bool,
        ctx: &mut ExecContext,
    ) -> Result<(u64, IoStats, Option<ScanMonitorPartial>)> {
        let meta = self.catalog.table(scan.plan.table)?;
        let planner = self.planner()?;
        let set = planner.scan_monitor_set(&scan.plan, &scan.pred, cfg)?;
        let handle = set.map(|s| Rc::new(RefCell::new(s)));
        let mut op = SeqScan::with_page_range(
            Arc::clone(&meta.storage),
            scan.plan.table,
            scan.pred.clone(),
            handle.clone(),
            page_range,
            first_random,
        );
        ctx.cold_start();
        ctx.fault_attempt = 0;
        let rows = drain(&mut op, ctx)?;
        drop(op); // release the operator's clone of the monitor handle
        let partial = match handle {
            Some(h) => {
                let set = Rc::try_unwrap(h)
                    .map_err(|_| Error::Internal("morsel monitor handle still shared".into()))?
                    .into_inner();
                Some(set.into_partial())
            }
            None => None,
        };
        Ok((rows.len() as u64, ctx.stats(), partial))
    }

    // ------------------------------------------------------------------
    // Ground truth (used by the evaluation methodology and tests).
    // ------------------------------------------------------------------

    /// Exact number of rows of `table` satisfying `pred` (brute force).
    pub fn true_cardinality(&self, table: &str, pred: &Conjunction) -> Result<u64> {
        let meta = self.catalog.table_by_name(table)?;
        let mut n = 0;
        for p in 0..meta.stats.pages {
            for row in meta.storage.rows_on_page(PageId(p))? {
                if pred.eval_short_circuit(&row).0 {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Exact `DPC(table, pred)` (brute force).
    pub fn true_dpc(&self, table: &str, pred: &Conjunction) -> Result<u64> {
        let meta = self.catalog.table_by_name(table)?;
        let mut n = 0;
        for p in 0..meta.stats.pages {
            let any = meta
                .storage
                .rows_on_page(PageId(p))?
                .iter()
                .any(|row| pred.eval_short_circuit(row).0);
            n += u64::from(any);
        }
        Ok(n)
    }

    /// Exact `DPC(inner, join-pred)` for an equijoin whose outer side is
    /// filtered by `outer_pred`: the distinct inner pages holding at
    /// least one row whose join key appears in the filtered outer.
    pub fn true_join_dpc(
        &self,
        outer: &str,
        inner: &str,
        outer_pred: &Conjunction,
        outer_col: &str,
        inner_col: &str,
    ) -> Result<u64> {
        let outer_meta = self.catalog.table_by_name(outer)?;
        let inner_meta = self.catalog.table_by_name(inner)?;
        let oc = outer_meta.schema().index_of(outer_col)?;
        let ic = inner_meta.schema().index_of(inner_col)?;
        // Join keys are compared by 64-bit datum hash — no per-row
        // string rendering. Both sides of an equijoin are same-typed, so
        // hash equality is value equality up to 2^-64 collisions, far
        // below any tolerance the evaluation uses.
        const KEY_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut keys = std::collections::HashSet::new();
        for p in 0..outer_meta.stats.pages {
            for row in outer_meta.storage.rows_on_page(PageId(p))? {
                if outer_pred.eval_short_circuit(&row).0 {
                    keys.insert(pf_common::hash::hash_datum(row.get(oc), KEY_SEED));
                }
            }
        }
        let mut n = 0;
        for p in 0..inner_meta.stats.pages {
            let any = inner_meta
                .storage
                .rows_on_page(PageId(p))?
                .iter()
                .any(|row| keys.contains(&pf_common::hash::hash_datum(row.get(ic), KEY_SEED)));
            n += u64::from(any);
        }
        Ok(n)
    }

    /// Injects exact cardinalities for every sub-expression the
    /// optimizer consults when planning `query` — the paper's
    /// methodology ("we ensured that the plan P was generated after
    /// injecting accurate cardinality values"), which isolates the
    /// page-count effect.
    pub fn inject_accurate_cardinalities(&mut self, query: &Query) -> Result<()> {
        let mut hints = std::mem::take(&mut self.hints);
        let injected = self.inject_cardinalities_into(query, &mut hints);
        self.hints = hints;
        self.plan_cache.invalidate();
        injected
    }

    /// The same injection, but into a caller-provided hint set — used by
    /// hermetic feedback cells whose overlays must not mutate `self`.
    pub fn inject_cardinalities_into(&self, query: &Query, hints: &mut HintSet) -> Result<()> {
        match query {
            Query::Count {
                table, predicate, ..
            } => {
                let schema = self.catalog.table_by_name(table)?.schema().clone();
                let pred = Query::resolve_predicates(predicate, &schema)?;
                self.inject_pred_cardinalities(table, &pred, hints)
            }
            Query::JoinCount {
                outer, outer_pred, ..
            } => {
                let schema = self.catalog.table_by_name(outer)?.schema().clone();
                let pred = Query::resolve_predicates(outer_pred, &schema)?;
                self.inject_pred_cardinalities(outer, &pred, hints)
            }
        }
    }

    fn inject_pred_cardinalities(
        &self,
        table: &str,
        pred: &Conjunction,
        hints: &mut HintSet,
    ) -> Result<()> {
        // Atoms, indexed pairs, and the full conjunction — everything the
        // access-path enumeration consults.
        let mut subsets: Vec<Vec<usize>> = (0..pred.len()).map(|i| vec![i]).collect();
        for i in 0..pred.len() {
            for j in i + 1..pred.len() {
                subsets.push(vec![i, j]);
            }
        }
        if pred.len() > 2 {
            subsets.push((0..pred.len()).collect());
        }
        for idx in subsets {
            let sub = Conjunction::new(idx.iter().map(|&i| pred.atoms[i].clone()).collect());
            let n = self.true_cardinality(table, &sub)?;
            hints.inject_cardinality(table, pred.key_of(&idx), n as f64);
        }
        Ok(())
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PredSpec;
    use pf_common::{Column, DataType, Datum};
    use pf_exec::CompareOp;

    /// 20 000 rows clustered on `id`; `corr` == id (fully correlated),
    /// `scat` a scrambled permutation.
    fn demo_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("corr", DataType::Int),
            Column::new("scat", DataType::Int),
            Column::new("pad", DataType::Str),
        ]);
        let n = 20_000i64;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Datum::Int(i),
                    Datum::Int(i),
                    Datum::Int((i * 7919) % n),
                    Datum::Str("x".repeat(60)),
                ])
            })
            .collect();
        db.create_table("t", schema, rows, Some("id")).unwrap();
        db.create_index("ix_corr", "t", "corr").unwrap();
        db.create_index("ix_scat", "t", "scat").unwrap();
        db.analyze().unwrap();
        db
    }

    fn q(col: &str, v: i64) -> Query {
        Query::count("t", vec![PredSpec::new(col, CompareOp::Lt, Datum::Int(v))])
    }

    #[test]
    fn run_returns_correct_count() {
        let db = demo_db();
        let out = db.run(&q("corr", 400), &MonitorConfig::off()).unwrap();
        assert_eq!(out.count, 400);
        assert!(out.elapsed_ms > 0.0);
        assert!(out.report.measurements.is_empty());
    }

    #[test]
    fn monitored_run_reports_dpc() {
        let db = demo_db();
        let out = db.run(&q("corr", 400), &MonitorConfig::default()).unwrap();
        assert_eq!(out.count, 400);
        assert!(!out.report.measurements.is_empty());
        // The measured DPC must match brute force.
        let schema = db.catalog().table_by_name("t").unwrap().schema().clone();
        let pred = Query::resolve_predicates(
            &[PredSpec::new("corr", CompareOp::Lt, Datum::Int(400))],
            &schema,
        )
        .unwrap();
        let truth = db.true_dpc("t", &pred).unwrap() as f64;
        let measured = out.report.actual_for("t", "corr<400").unwrap();
        // Scan plans count exactly... unless the chosen plan was an index
        // plan (linear counting); allow a small tolerance.
        assert!(
            (measured - truth).abs() / truth.max(1.0) < 0.1,
            "measured {measured}, truth {truth}"
        );
    }

    #[test]
    fn analytical_overestimates_correlated_dpc() {
        let db = demo_db();
        let out = db.run(&q("corr", 400), &MonitorConfig::default()).unwrap();
        let m = out
            .report
            .measurements
            .iter()
            .find(|m| m.expression == "corr<400")
            .unwrap();
        let est = m.estimated.unwrap();
        assert!(
            est > m.actual * 10.0,
            "analytical {est} should dwarf actual {}",
            m.actual
        );
    }

    #[test]
    fn injection_changes_plan() {
        let mut db = demo_db();
        let query = q("corr", 400);
        let before = db.run(&query, &MonitorConfig::default()).unwrap();
        assert_eq!(before.choice.name(), "TableScan");
        db.hints_mut().absorb_report(&before.report);
        let after = db.run(&query, &MonitorConfig::off()).unwrap();
        assert_eq!(after.choice.name(), "IndexSeek");
        assert_eq!(after.count, before.count, "plans agree on the answer");
        assert!(after.elapsed_ms < before.elapsed_ms / 2.0);
    }

    #[test]
    fn true_cardinality_and_dpc() {
        let db = demo_db();
        let schema = db.catalog().table_by_name("t").unwrap().schema().clone();
        let pred = Query::resolve_predicates(
            &[PredSpec::new("id", CompareOp::Lt, Datum::Int(123))],
            &schema,
        )
        .unwrap();
        assert_eq!(db.true_cardinality("t", &pred).unwrap(), 123);
        let dpc = db.true_dpc("t", &pred).unwrap();
        let rpp = db.catalog().table_by_name("t").unwrap().stats.rows_per_page;
        assert_eq!(dpc, (123.0 / rpp).ceil() as u64);
    }

    #[test]
    fn stats_required_before_optimizing() {
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        db.create_table("t", schema, vec![Row::new(vec![Datum::Int(1)])], None)
            .unwrap();
        assert!(db.run(&q("a", 1), &MonitorConfig::off()).is_err());
    }

    #[test]
    fn inject_accurate_cardinalities_covers_atoms_and_pairs() {
        let mut db = demo_db();
        let query = Query::count(
            "t",
            vec![
                PredSpec::new("corr", CompareOp::Lt, Datum::Int(100)),
                PredSpec::new("scat", CompareOp::Lt, Datum::Int(10_000)),
            ],
        );
        db.inject_accurate_cardinalities(&query).unwrap();
        assert_eq!(db.hints().cardinality("t", "corr<100"), Some(100.0));
        assert!(db
            .hints()
            .cardinality("t", "corr<100 AND scat<10000")
            .is_some());
    }
}
