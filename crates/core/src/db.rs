//! The [`Database`] facade.

use crate::breaker::CircuitBreaker;
use crate::feedback_store::FeedbackStore;
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::planner::{LoweredPlan, MonitorConfig, OptimizedQuery, PlanChoice, Planner};
use crate::query::Query;
use pf_common::{Datum, Error, IndexId, PageId, Result, Rid, Row, Schema, TableId};
use pf_exec::index::{Fetch, IndexSeek, RidList, SeekRange};
use pf_exec::monitor::{FetchTemplate, MonitorTemplate, ScanMonitorPartial, SemiJoinRecipe};
use pf_exec::scan::SeqScan;
use pf_exec::{drain, run_count, CancelToken, Conjunction, ExecContext, RidSource};
use pf_feedback::{BitVectorFilter, FeedbackReport, LinearCounter};
use pf_optimizer::{
    AccessPath, CostModel, DbStats, EpochStamp, HintSet, JoinMethod, JoinPlan, JoinSpec, Optimizer,
    SingleTablePlan, StalenessPolicy, TableEpochState,
};
use pf_storage::{Catalog, DiskModel, FaultPlan, IoStats, TableBuilder};
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;

/// How many times a transient fault (an injected read stall) is retried
/// before the error surfaces. Stall budgets are at most 2 attempts per
/// site, so this always clears an injected stall.
pub const MAX_TRANSIENT_RETRIES: u32 = 3;

/// Environment knob naming a default per-query deadline in simulated
/// milliseconds (see [`Database::run_query_with_deadline`]). Unset or
/// unparsable means no deadline.
pub const DEADLINE_ENV: &str = "PF_DEADLINE_MS";

/// The [`DEADLINE_ENV`] value, if one is set and parses.
pub fn deadline_from_env() -> Option<u64> {
    pf_common::env_knob(DEADLINE_ENV)
}

/// Everything one run of a query produced.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The aggregate result (`COUNT`).
    pub count: u64,
    /// Raw executor counters.
    pub stats: IoStats,
    /// Simulated elapsed time (cold cache).
    pub elapsed_ms: f64,
    /// Harvested DPC measurements (empty when monitoring was off).
    pub report: FeedbackReport,
    /// Human-readable plan description.
    pub description: String,
    /// The optimizer decision that ran.
    pub choice: PlanChoice,
    /// How many transient-fault retries this outcome absorbed (0 in a
    /// fault-free run).
    pub fault_retries: u32,
    /// Bytes the run's still-observing monitors held at harvest time
    /// (see [`MonitorHarness::approx_monitor_bytes`]) — what a memory
    /// reservation is reconciled against at completion. 0 when
    /// monitoring was off.
    pub monitor_bytes: usize,
}

impl QueryOutcome {
    /// Whether execution skipped corrupt pages: the count and every DPC
    /// measurement are then lower bounds over the readable fraction.
    pub fn degraded(&self) -> bool {
        self.stats.pages_skipped > 0 || self.report.is_degraded()
    }
}

/// The shared description of a scan that will execute as page-range
/// morsels: the winning plan, its resolved predicate, and the full page
/// range. Plain data (no monitor handles), so it can be captured by
/// reference from every worker thread.
#[derive(Debug, Clone)]
pub struct MorselScan {
    /// The winning sequential-scan plan.
    pub plan: SingleTablePlan,
    /// The resolved predicate all morsels filter with.
    pub pred: Conjunction,
    /// `[first, last)` pages the whole scan covers.
    pub page_range: (u32, u32),
    /// Whether the scan's first page access pays a random (positioning)
    /// I/O — true for clustered range scans; morsel 0 inherits it.
    pub first_random: bool,
}

/// An index-driven single-table plan whose RID fetch list executes as
/// contiguous-run morsels.
#[derive(Debug, Clone)]
pub struct MorselFetch {
    /// The winning index-driven plan (`IndexSeek` / `IndexIntersection`).
    pub plan: SingleTablePlan,
    /// The full resolved predicate (seekable atoms plus residual).
    pub pred: Conjunction,
}

/// A hash join whose build side runs as outer-scan morsels and whose
/// probe side runs as inner page-range morsels.
#[derive(Debug, Clone)]
pub struct MorselHashJoin {
    /// The winning join plan.
    pub plan: JoinPlan,
    /// The resolved join specification.
    pub spec: JoinSpec,
    /// The build-side scan, morsel-partitionable.
    pub outer_scan: MorselScan,
    /// `[first, last)` pages of the probe-side full scan.
    pub inner_range: (u32, u32),
    /// Semi-join filter sizing `(numbits, seed)` when the planner would
    /// attach one — mirrors the serial lowering's `BitVectorConfig`, so
    /// per-morsel filter fragments OR-merge into the serial filter.
    pub filter: Option<(usize, u64)>,
    /// The planner's filter-pushdown decision (see
    /// [`crate::planner::Planner::join_pushdown`]): probe morsels carry
    /// the merged build filter as a scan pre-filter.
    pub pushdown: bool,
}

/// An index-nested-loops join: outer-scan morsels collect join keys, the
/// coordinator replays the inner index seeks, and the resulting RID run
/// fetches in morsels.
#[derive(Debug, Clone)]
pub struct MorselInlJoin {
    /// The winning join plan.
    pub plan: JoinPlan,
    /// The resolved join specification.
    pub spec: JoinSpec,
    /// The outer (driving) scan, morsel-partitionable.
    pub outer_scan: MorselScan,
}

/// Every query shape the parallel driver can execute as morsels. Shapes
/// not represented here (merge joins, index-only scans, DPC-cache
/// overlays, governor deadlines) fall back to a serial run.
#[derive(Debug, Clone)]
pub enum MorselPlan {
    /// A sequential scan split into page-range morsels.
    Scan(MorselScan),
    /// An index-driven fetch split into RID-run morsels.
    Fetch(MorselFetch),
    /// A hash join with morsel build and probe phases.
    HashJoin(MorselHashJoin),
    /// An index-nested-loops join with morsel outer and fetch phases.
    InlJoin(MorselInlJoin),
}

/// What one build-side join morsel returns: the passing rows' join keys
/// in row order, the morsel's I/O counters, its scan-monitor partial,
/// and its semi-join bit-vector fragment.
pub type BuildMorselOutput = (
    Vec<Datum>,
    IoStats,
    Option<ScanMonitorPartial>,
    Option<BitVectorFilter>,
);

/// Seed for the coordinator's radix-partitioned multiplicity table —
/// distinct from every monitor seed so table routing never correlates
/// with sketch hashing.
pub(crate) const PARTITION_SEED: u64 = 0xC0FF_EE00_D15C_0B01;

/// An embedded analytical database with page-count execution feedback.
///
/// Owns the catalog, per-column statistics, the persistent hint set (the
/// "feedback cache" of Section II-C), and the execution configuration.
pub struct Database {
    catalog: Catalog,
    stats: Option<DbStats>,
    hints: HintSet,
    /// Self-tuning DPC-histogram cache (None = disabled).
    pub(crate) dpc_cache: Option<crate::histogram_cache::DpcHistogramCache>,
    /// Durable feedback persistence (None = in-memory hints only).
    feedback_store: Option<FeedbackStore>,
    /// Circuit breaker guarding the durable feedback path (None = store
    /// errors propagate to the caller, the pre-breaker behaviour).
    breaker: Option<CircuitBreaker>,
    /// Memoized optimizer decisions, invalidated on anything that can
    /// change a plan (`PF_PLAN_CACHE=off` disables).
    plan_cache: PlanCache,
    /// How stamped hints are aged as DML drifts their tables.
    pub staleness: StalenessPolicy,
    /// Disk-model constants used for costing *and* execution accounting.
    pub disk: DiskModel,
    /// Buffer-pool capacity in pages for each execution.
    pub pool_pages: usize,
}

impl Database {
    /// A database with the default disk model and a 64 Ki-page pool
    /// (512 MB at 8 KB/page — large enough that within-query re-fetches
    /// never occur at our scales, matching the paper's setup).
    pub fn new() -> Self {
        let mut catalog = Catalog::new();
        // Fault injection is opt-in via PF_FAULT_RATE / PF_FAULT_SEED:
        // unset, this is None and every code path below is fault-free.
        catalog.set_fault_plan(FaultPlan::from_env());
        Database {
            catalog,
            stats: None,
            hints: HintSet::new(),
            dpc_cache: None,
            feedback_store: None,
            breaker: None,
            plan_cache: PlanCache::from_env(),
            staleness: StalenessPolicy::default(),
            disk: DiskModel::default(),
            pool_pages: 65_536,
        }
    }

    /// A database with custom disk-model constants.
    pub fn with_disk(disk: DiskModel) -> Self {
        Database {
            disk,
            ..Self::new()
        }
    }

    /// Creates (bulk-loads) a table; `clustered_on` names the clustering
    /// column (rows are sorted by it), `None` loads a heap in row order.
    pub fn create_table(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
        clustered_on: Option<&str>,
    ) -> Result<TableId> {
        let mut b = TableBuilder::new(name, schema).rows(rows);
        if let Some(c) = clustered_on {
            b = b.clustered_on(c);
        }
        let id = b.register(&mut self.catalog)?;
        self.stats = None; // statistics are stale
        self.plan_cache.invalidate();
        Ok(id)
    }

    /// Creates a table from a pre-configured builder (custom page size /
    /// fill factor).
    pub fn create_table_with(&mut self, builder: TableBuilder) -> Result<TableId> {
        let id = builder.register(&mut self.catalog)?;
        self.stats = None;
        self.plan_cache.invalidate();
        Ok(id)
    }

    /// Builds a nonclustered index on `column` of `table`.
    pub fn create_index(&mut self, name: &str, table: &str, column: &str) -> Result<IndexId> {
        let id = self.catalog.table_by_name(table)?.id;
        self.plan_cache.invalidate();
        self.catalog.create_index(name, id, column)
    }

    /// Builds (or rebuilds) per-column statistics with a full scan.
    pub fn analyze(&mut self) -> Result<()> {
        self.stats = Some(DbStats::build(&self.catalog)?);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// Sets the fault-injection plan: existing tables have their
    /// deterministic share of page damage (re)materialized and tables
    /// created later inherit the plan at load. Damage is a pure function
    /// of `(seed, table, page)` over the pristine bytes, so setting the
    /// plan after loading is byte-identical to setting it before.
    /// `None` heals all injected damage. Fails if a query currently
    /// holds table storage.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) -> Result<()> {
        self.catalog.install_fault_plan(plan)
    }

    /// The active fault-injection plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.catalog.fault_plan()
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Per-column statistics ([`Database::analyze`] must have run).
    pub fn stats(&self) -> Result<&DbStats> {
        self.stats
            .as_ref()
            .ok_or_else(|| Error::InvalidArgument("call analyze() before optimizing".into()))
    }

    /// The persistent hint set (injected cardinalities / page counts).
    ///
    /// Handing out mutable access conservatively invalidates the plan
    /// cache: any hint edit can flip an optimizer decision.
    pub fn hints_mut(&mut self) -> &mut HintSet {
        self.plan_cache.invalidate();
        &mut self.hints
    }

    /// Read view of the hints.
    pub fn hints(&self) -> &HintSet {
        &self.hints
    }

    // ------------------------------------------------------------------
    // Durable feedback and DML epochs.
    // ------------------------------------------------------------------

    /// Attaches (opening or creating) a durable [`FeedbackStore`] at
    /// `dir`. Every recovered report is replayed into the hint set with
    /// its harvest-time epoch stamps, then aged against the tables'
    /// *current* modification state — measurements taken before heavy
    /// DML come back discounted or not at all. Returns the number of
    /// recovered reports.
    pub fn attach_feedback_store(&mut self, dir: impl AsRef<Path>) -> Result<usize> {
        let store = FeedbackStore::open(dir)?;
        let recovered = store.len();
        store.replay_into(&mut self.hints);
        let states = self.table_epoch_states();
        self.hints.apply_staleness(self.staleness, &states);
        self.feedback_store = Some(store);
        self.plan_cache.invalidate();
        Ok(recovered)
    }

    /// The attached feedback store, if any.
    pub fn feedback_store(&self) -> Option<&FeedbackStore> {
        self.feedback_store.as_ref()
    }

    /// Mutable access to the attached feedback store (compaction,
    /// eviction, stats).
    pub fn feedback_store_mut(&mut self) -> Option<&mut FeedbackStore> {
        self.feedback_store.as_mut()
    }

    /// Detaches and returns the feedback store; hints stay as absorbed.
    pub fn detach_feedback_store(&mut self) -> Option<FeedbackStore> {
        self.feedback_store.take()
    }

    /// Absorbs a harvested report into the hint set, stamping every
    /// measurement with its table's current modification epoch. When a
    /// feedback store is attached the report is made durable *first*
    /// (WAL before use): a crash after this call returns cannot lose
    /// the measurement.
    pub fn absorb_feedback(&mut self, report: &FeedbackReport) -> Result<()> {
        let stamps = self.epoch_stamps();
        if let Some(store) = &mut self.feedback_store {
            store.append(report, &stamps)?;
        }
        self.hints.absorb_report_stamped(report, &stamps);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// Attaches (or with `None`, detaches) a [`CircuitBreaker`] around
    /// the durable feedback path. With a breaker attached,
    /// [`Database::absorb_feedback_at`] contains typed storage failures
    /// instead of propagating them: queries keep running without
    /// durability while the breaker is open.
    pub fn set_breaker(&mut self, breaker: Option<CircuitBreaker>) {
        self.breaker = breaker;
    }

    /// The attached feedback circuit breaker, if any.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// Mutable access to the attached breaker (CLI `.breaker trip` /
    /// `.breaker reset`).
    pub fn breaker_mut(&mut self) -> Option<&mut CircuitBreaker> {
        self.breaker.as_mut()
    }

    /// [`Database::absorb_feedback`] at a simulated-clock instant, with
    /// the durable append routed through the attached [`CircuitBreaker`].
    ///
    /// The in-memory absorption (hints, plan-cache invalidation) always
    /// happens — feedback is never lost to the running process. The
    /// durable append is attempted only when the breaker allows it at
    /// `now_ms`; any append failure (a typed [`Error::StorageFull`],
    /// or the torn-store refusal that follows one) is *recorded* on
    /// the breaker and contained rather than returned, so a dying WAL
    /// degrades durability instead of failing queries. Without a
    /// breaker this behaves exactly like [`Database::absorb_feedback`].
    ///
    /// Returns whether the report was made durable.
    pub fn absorb_feedback_at(&mut self, report: &FeedbackReport, now_ms: u64) -> Result<bool> {
        let stamps = self.epoch_stamps();
        let mut durable = false;
        if let Some(store) = &mut self.feedback_store {
            match &mut self.breaker {
                None => {
                    store.append(report, &stamps)?;
                    durable = true;
                }
                Some(breaker) => {
                    if breaker.allow(now_ms) {
                        match store.append(report, &stamps) {
                            Ok(_) => {
                                breaker.record(now_ms, true);
                                durable = true;
                            }
                            Err(_) => breaker.record(now_ms, false),
                        }
                    }
                }
            }
        }
        self.hints.absorb_report_stamped(report, &stamps);
        self.plan_cache.invalidate();
        Ok(durable)
    }

    /// Compacts the feedback store through the breaker: skipped while
    /// the breaker refuses at `now_ms`, and a typed storage failure is
    /// recorded on the breaker and contained. Returns whether a
    /// compaction ran to completion. No-op without a store.
    pub fn compact_feedback_at(&mut self, now_ms: u64) -> Result<bool> {
        let Some(store) = &mut self.feedback_store else {
            return Ok(false);
        };
        match &mut self.breaker {
            None => {
                store.compact()?;
                Ok(true)
            }
            Some(breaker) => {
                if !breaker.allow(now_ms) {
                    return Ok(false);
                }
                match store.compact() {
                    Ok(()) => {
                        breaker.record(now_ms, true);
                        Ok(true)
                    }
                    Err(_) => {
                        breaker.record(now_ms, false);
                        Ok(false)
                    }
                }
            }
        }
    }

    /// Current modification state of every table, keyed by name — the
    /// input to staleness decisions.
    pub fn table_epoch_states(&self) -> HashMap<String, TableEpochState> {
        self.catalog
            .tables()
            .iter()
            .map(|t| {
                let s = t.storage.epoch_state();
                (
                    t.name.clone(),
                    TableEpochState {
                        epoch: s.epoch,
                        dirty_pages: s.dirty_pages,
                        pages: s.pages,
                    },
                )
            })
            .collect()
    }

    /// Harvest-time epoch stamps for every table (the state a
    /// measurement taken *now* should carry).
    pub fn epoch_stamps(&self) -> HashMap<String, EpochStamp> {
        self.catalog
            .tables()
            .iter()
            .map(|t| {
                let s = t.storage.epoch_state();
                (
                    t.name.clone(),
                    EpochStamp {
                        epoch: s.epoch,
                        dirty_pages: s.dirty_pages,
                    },
                )
            })
            .collect()
    }

    /// Inserts a row into `table`, advancing its modification epoch.
    /// Statistics go stale (re-run [`Database::analyze`]) and stamped
    /// DPC hints are aged against the new state: drifted measurements
    /// are discounted toward the analytical estimate, dead ones are
    /// evicted.
    pub fn insert_row(&mut self, table: &str, row: Row) -> Result<()> {
        let id = self.catalog.table_by_name(table)?.id;
        self.catalog.insert_row(id, row)?;
        self.after_dml()
    }

    /// Deletes every row of `table` matching `pred`, advancing its
    /// modification epoch; returns the number of rows deleted. Same
    /// statistics/hint aging as [`Database::insert_row`].
    pub fn delete_where<F>(&mut self, table: &str, pred: F) -> Result<u64>
    where
        F: FnMut(&Row) -> bool,
    {
        let id = self.catalog.table_by_name(table)?.id;
        let n = self.catalog.delete_where(id, pred)?;
        self.after_dml()?;
        Ok(n)
    }

    fn after_dml(&mut self) -> Result<()> {
        self.stats = None; // cardinality statistics are stale
        let states = self.table_epoch_states();
        self.hints.apply_staleness(self.staleness, &states);
        self.plan_cache.invalidate();
        Ok(())
    }

    /// An optimizer over the current catalog, statistics, and hints.
    pub fn optimizer(&self) -> Result<Optimizer<'_>> {
        Ok(Optimizer::new(
            &self.catalog,
            self.stats()?,
            CostModel::with_disk(self.disk),
            &self.hints,
        ))
    }

    /// A planner over the current state.
    pub fn planner(&self) -> Result<Planner<'_>> {
        Ok(Planner::new(
            &self.catalog,
            self.stats()?,
            &self.hints,
            CostModel::with_disk(self.disk),
        ))
    }

    /// Optimizes and lowers a query without running it. Consults the
    /// DPC-histogram cache (if enabled) for expressions lacking exact
    /// feedback, and otherwise serves repeated query shapes from the
    /// plan cache (optimizer decision memoized; monitors still built
    /// fresh per call from `cfg.seed`).
    pub fn lower(&self, query: &Query, cfg: &MonitorConfig) -> Result<LoweredPlan> {
        if self.dpc_cache.is_some() {
            // Histogram-cache overlays are per-query hint sets; their
            // decisions are not cacheable under a single key.
            let hints = self.effective_hints(query)?;
            return self.lower_with(query, cfg, &hints);
        }
        let planner = self.planner()?;
        let optimized = self.optimized(query, cfg, &planner)?;
        planner.lower_optimized(&optimized, cfg)
    }

    /// The optimizer decision for `query`, served from the plan cache
    /// when possible.
    fn optimized(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        planner: &Planner<'_>,
    ) -> Result<Arc<OptimizedQuery>> {
        if !self.plan_cache.is_enabled() {
            return Ok(Arc::new(planner.optimize_query(query)?));
        }
        let key = PlanCache::key_for(query, cfg);
        if let Some(cached) = self.plan_cache.get(&key) {
            return Ok(cached);
        }
        let fresh = Arc::new(planner.optimize_query(query)?);
        self.plan_cache.insert(key, Arc::clone(&fresh));
        Ok(fresh)
    }

    /// Plan-cache effectiveness counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Replaces the plan cache with one that is explicitly on or off —
    /// test hook and CLI escape hatch (the `PF_PLAN_CACHE` knob decides
    /// the default at construction).
    pub fn set_plan_cache_enabled(&mut self, enabled: bool) {
        self.plan_cache = PlanCache::new(enabled);
    }

    /// Optimizes and lowers a query against an explicit hint set instead
    /// of the database's own — the entry point for hermetic feedback
    /// cells, whose hint overlays must not touch shared state.
    pub fn lower_with(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        hints: &HintSet,
    ) -> Result<LoweredPlan> {
        Planner::new(
            &self.catalog,
            self.stats()?,
            hints,
            CostModel::with_disk(self.disk),
        )
        .lower_query(query, cfg)
    }

    /// Executes a lowered plan cold-cache and harvests its monitors.
    ///
    /// Single-attempt: under an active fault plan an injected read stall
    /// surfaces as a transient [`Error::ReadStalled`]. Prefer
    /// [`Database::execute_with_retry`] (or [`Database::run`], which uses
    /// it) when a fault plan may be active.
    pub fn execute(&self, plan: LoweredPlan) -> Result<QueryOutcome> {
        let mut ctx = self.make_context();
        self.execute_attempt(plan, 0, &mut ctx)
    }

    /// A fresh execution context sized and costed for this database.
    pub fn make_context(&self) -> ExecContext {
        ExecContext::with_model(self.pool_pages, self.disk)
    }

    fn execute_attempt(
        &self,
        plan: LoweredPlan,
        attempt: u32,
        ctx: &mut ExecContext,
    ) -> Result<QueryOutcome> {
        let LoweredPlan {
            mut op,
            harness,
            choice,
            description,
            explain: _,
        } = plan;
        ctx.cold_start();
        ctx.fault_attempt = attempt;
        // Counting driver: operators that can count page-at-a-time
        // (vectorized joins, scans) skip row materialization entirely.
        // Materialization was never charged, so I/O statistics are
        // byte-identical to the old drain-then-count.
        let count = run_count(op.as_mut(), ctx)?;
        let monitor_bytes = harness.approx_monitor_bytes();
        Ok(QueryOutcome {
            count,
            stats: ctx.stats(),
            elapsed_ms: ctx.elapsed_ms(),
            report: harness.harvest(),
            description,
            choice,
            fault_retries: attempt,
            monitor_bytes,
        })
    }

    /// Lowers (via `lower`) and executes, retrying the whole query —
    /// fresh plan, cold cache — when execution hits a transient fault,
    /// up to [`MAX_TRANSIENT_RETRIES`] retries. Each retry re-lowers so
    /// monitors are rebuilt from the same seeds: a run that needed
    /// retries produces byte-identical sketches to one that needed none.
    pub fn execute_with_retry(
        &self,
        lower: impl Fn() -> Result<LoweredPlan>,
    ) -> Result<QueryOutcome> {
        let mut ctx = self.make_context();
        self.execute_with_retry_in(lower, &mut ctx)
    }

    /// [`Database::execute_with_retry`] against a caller-provided
    /// context: `ctx` is cold-started per attempt, so results are
    /// byte-identical to a fresh context while its buffer-pool and
    /// residency-map allocations are reused across queries.
    pub fn execute_with_retry_in(
        &self,
        lower: impl Fn() -> Result<LoweredPlan>,
        ctx: &mut ExecContext,
    ) -> Result<QueryOutcome> {
        let mut attempt = 0;
        loop {
            match self.execute_attempt(lower()?, attempt, ctx) {
                Err(e) if e.is_transient() && attempt < MAX_TRANSIENT_RETRIES => attempt += 1,
                other => return other,
            }
        }
    }

    /// Optimizes, lowers, and executes a query in one call, absorbing
    /// transient faults via [`Database::execute_with_retry`].
    pub fn run(&self, query: &Query, cfg: &MonitorConfig) -> Result<QueryOutcome> {
        self.execute_with_retry(|| self.lower(query, cfg))
    }

    /// [`Database::run`] with a reusable context (see
    /// [`Database::execute_with_retry_in`]) — the parallel driver's
    /// per-worker hot path.
    pub fn run_in(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        ctx: &mut ExecContext,
    ) -> Result<QueryOutcome> {
        self.execute_with_retry_in(|| self.lower(query, cfg), ctx)
    }

    // ------------------------------------------------------------------
    // Interruptible execution: cooperative cancellation and deadlines.
    // ------------------------------------------------------------------

    /// Runs `query` under a caller-held [`CancelToken`]: operators poll
    /// the token at page granularity and an armed or tripped token
    /// aborts the query with [`Error::Cancelled`]. An aborted run is
    /// hygienic — it returns no [`QueryOutcome`], so no feedback can be
    /// absorbed, and the plan cache is only *read*, never populated, so
    /// database state is byte-identical to the query never having run.
    pub fn run_query_cancellable(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        cancel: CancelToken,
    ) -> Result<QueryOutcome> {
        self.run_interruptible(query, cfg, cancel, None)
    }

    /// Runs `query` with a deadline on the *simulated* clock: once the
    /// context's charged elapsed time passes `deadline_ms`, the next
    /// page boundary aborts with [`Error::DeadlineExceeded`]. Because
    /// the clock is simulated, the abort point is a pure function of
    /// the query and the database — deterministic across machines,
    /// worker counts, and repeat runs. The same hygiene as
    /// [`Database::run_query_cancellable`] applies: no feedback, no
    /// plan-cache writes.
    pub fn run_query_with_deadline(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        deadline_ms: u64,
    ) -> Result<QueryOutcome> {
        self.run_interruptible(query, cfg, CancelToken::new(), Some(deadline_ms))
    }

    /// Shared engine for the interruptible entry points. Cancellation
    /// and deadline errors are non-transient, so the retry loop (which
    /// only absorbs injected read stalls) surfaces them immediately.
    fn run_interruptible(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
        cancel: CancelToken,
        deadline_ms: Option<u64>,
    ) -> Result<QueryOutcome> {
        let mut ctx = self.make_context();
        ctx.cancel = cancel;
        ctx.deadline_ms = deadline_ms;
        self.execute_with_retry_in(|| self.lower_without_cache_insert(query, cfg), &mut ctx)
    }

    /// Plan-shape-derived monitor memory estimate for running `query`
    /// under `cfg`: the byte total the lowered plan's monitors would
    /// hold ([`crate::MonitorHarness::approx_monitor_bytes`]). This is what a
    /// query reserves against the global [`crate::MemoryBudget`] at
    /// admission; the reservation is reconciled against the outcome's
    /// `monitor_bytes` at completion. Lowering here is hygienic (no
    /// plan-cache writes), so estimating a query that is later shed
    /// leaves the database byte-identical to never having seen it.
    pub fn estimate_monitor_bytes(&self, query: &Query, cfg: &MonitorConfig) -> Result<usize> {
        if !cfg.enabled {
            return Ok(0);
        }
        let lowered = self.lower_without_cache_insert(query, cfg)?;
        Ok(lowered.harness.approx_monitor_bytes())
    }

    /// [`Database::lower`] for interruptible runs: a cached optimizer
    /// decision may be *read* (hits are harmless) but a miss optimizes
    /// without populating the cache, so a run that later aborts leaves
    /// the cache exactly as it found it.
    fn lower_without_cache_insert(
        &self,
        query: &Query,
        cfg: &MonitorConfig,
    ) -> Result<LoweredPlan> {
        if self.dpc_cache.is_some() {
            let hints = self.effective_hints(query)?;
            return self.lower_with(query, cfg, &hints);
        }
        let planner = self.planner()?;
        let optimized = match self.plan_cache.get(&PlanCache::key_for(query, cfg)) {
            Some(cached) => cached,
            None => Arc::new(planner.optimize_query(query)?),
        };
        planner.lower_optimized(&optimized, cfg)
    }

    // ------------------------------------------------------------------
    // Intra-query morsel parallelism.
    // ------------------------------------------------------------------

    /// Whether intra-query morsel parallelism is enabled at all — the
    /// `PF_MORSEL` environment knob. Unset or any value other than
    /// `off`/`0`/`false` enables it.
    pub fn morsels_enabled() -> bool {
        pf_common::env_switch("PF_MORSEL", true)
    }

    /// Decides whether `query` under `cfg` can execute as plain
    /// page-range scan morsels, returning the shared scan description if
    /// so. Retained (delegating to [`Database::morsel_plan`]) for
    /// callers that only care about the scan shape.
    pub fn morsel_scan(&self, query: &Query, cfg: &MonitorConfig) -> Result<Option<MorselScan>> {
        Ok(match self.morsel_plan(query, cfg)? {
            Some(MorselPlan::Scan(scan)) => Some(scan),
            _ => None,
        })
    }

    /// Classifies `query` under `cfg` into a morsel-executable shape, or
    /// `None` when only the serial path preserves bit-identity.
    ///
    /// Global gates: `PF_MORSEL=off`, a DPC-histogram overlay (per-query
    /// hint sets are neither cacheable nor splittable), or a governor
    /// deadline (mid-run shedding assumes one monotone clock) force a
    /// serial run. Sampled and budgeted monitors are fine: page sampling
    /// is a pure function of `(seed, page)` and budget shedding is
    /// decided once at lowering, so both replicate per morsel.
    /// Sequential scans parallelize even under a fault plan (stalls
    /// retry morsel-locally; corruption is a pure function of the page);
    /// index-fetch and join shapes additionally require a fault-free
    /// catalog, and shapes whose distinct-page accounting is reconciled
    /// at merge time require a buffer pool that cannot evict
    /// (`pages ≤ pool_pages`).
    pub fn morsel_plan(&self, query: &Query, cfg: &MonitorConfig) -> Result<Option<MorselPlan>> {
        if !Self::morsels_enabled() || self.dpc_cache.is_some() || cfg.deadline_ms.is_some() {
            return Ok(None);
        }
        let planner = self.planner()?;
        let optimized = self.optimized(query, cfg, &planner)?;
        match &*optimized {
            OptimizedQuery::Single { plan, pred } => {
                if let Some((page_range, first_random)) = planner.scan_page_range(plan, pred)? {
                    if page_range.1.saturating_sub(page_range.0) < 2 {
                        return Ok(None);
                    }
                    return Ok(Some(MorselPlan::Scan(MorselScan {
                        plan: plan.clone(),
                        pred: pred.clone(),
                        page_range,
                        first_random,
                    })));
                }
                if self.fault_plan().is_some() {
                    return Ok(None);
                }
                match plan.path {
                    AccessPath::IndexSeek { .. } | AccessPath::IndexIntersection { .. } => {}
                    _ => return Ok(None),
                }
                let meta = self.catalog.table(plan.table)?;
                if meta.stats.pages as usize > self.pool_pages {
                    // Merge-time residency reconciliation assumes no
                    // eviction: every re-fetch of a page must hit.
                    return Ok(None);
                }
                Ok(Some(MorselPlan::Fetch(MorselFetch {
                    plan: plan.clone(),
                    pred: pred.clone(),
                })))
            }
            OptimizedQuery::Join { plan, spec } => {
                if self.fault_plan().is_some() {
                    return Ok(None);
                }
                let Some((page_range, first_random)) =
                    planner.scan_page_range(&plan.outer_plan, &spec.outer_pred)?
                else {
                    return Ok(None);
                };
                let outer_scan = MorselScan {
                    plan: plan.outer_plan.clone(),
                    pred: spec.outer_pred.clone(),
                    page_range,
                    first_random,
                };
                let outer_pages = self.catalog.table(spec.outer)?.stats.pages as usize;
                let inner_pages = self.catalog.table(spec.inner)?.stats.pages as usize;
                if outer_pages + inner_pages > self.pool_pages {
                    // Cross-phase residency reconciliation (a self-join's
                    // probe hits the build scan's pages; fetch runs hit
                    // earlier runs' pages) assumes the serial pool never
                    // evicted during the whole join.
                    return Ok(None);
                }
                match plan.method {
                    JoinMethod::Hash => {
                        if inner_pages < 2 {
                            return Ok(None);
                        }
                        let filter = planner.join_filter_config(plan, spec, cfg)?;
                        let pushdown = filter.is_some() && planner.join_pushdown(plan, spec)?;
                        Ok(Some(MorselPlan::HashJoin(MorselHashJoin {
                            plan: plan.clone(),
                            spec: spec.clone(),
                            outer_scan,
                            inner_range: (0, inner_pages as u32),
                            filter,
                            pushdown,
                        })))
                    }
                    JoinMethod::IndexNestedLoops => {
                        if spec.inner == spec.outer {
                            // A self-join's inner fetches interleave with
                            // the outer scan in serial execution: a fetch
                            // can warm a page *ahead* of the scan cursor,
                            // turning a later sequential miss into a hit.
                            // That accounting is inherently order-
                            // dependent, so INL self-joins stay serial.
                            return Ok(None);
                        }
                        Ok(Some(MorselPlan::InlJoin(MorselInlJoin {
                            plan: plan.clone(),
                            spec: spec.clone(),
                            outer_scan,
                        })))
                    }
                    JoinMethod::Merge => Ok(None),
                }
            }
        }
    }

    /// Runs one morsel of a partitioned scan: a private scan over
    /// `page_range` whose monitor set is rebuilt from the reference
    /// `template` (extracted post-governor, so budget shedding
    /// replicates), reusing `ctx`. Transient injected stalls retry
    /// morsel-locally — a cold restart of just this page range. Returns
    /// the morsel's row count, I/O counters, finished monitor partial,
    /// and the attempt index that succeeded: the coordinator's
    /// `fault_retries` is the max over morsels, which equals the serial
    /// whole-query retry count (a stall site's budget is a pure function
    /// of the site).
    pub fn run_morsel(
        &self,
        scan: &MorselScan,
        template: Option<&MonitorTemplate>,
        page_range: (u32, u32),
        first_random: bool,
        ctx: &mut ExecContext,
    ) -> Result<(u64, IoStats, Option<ScanMonitorPartial>, u32)> {
        let meta = self.catalog.table(scan.plan.table)?;
        let mut attempt = 0;
        loop {
            let handle = template.map(|t| Rc::new(RefCell::new(t.instantiate(&scan.pred))));
            let mut op = SeqScan::with_page_range(
                Arc::clone(&meta.storage),
                scan.plan.table,
                scan.pred.clone(),
                handle.clone(),
                page_range,
                first_random,
            );
            ctx.cold_start();
            ctx.fault_attempt = attempt;
            match drain(&mut op, ctx) {
                Ok(rows) => {
                    drop(op); // release the operator's clone of the monitor handle
                    let partial = match handle {
                        Some(h) => Some(Self::unwrap_scan_handle(h)?.into_partial()),
                        None => None,
                    };
                    return Ok((rows.len() as u64, ctx.stats(), partial, attempt));
                }
                Err(e) if e.is_transient() && attempt < MAX_TRANSIENT_RETRIES => attempt += 1,
                Err(e) => return Err(e),
            }
        }
    }

    /// Recovers sole ownership of a worker-local scan-monitor handle
    /// after its operator is dropped.
    fn unwrap_scan_handle(
        h: Rc<RefCell<pf_exec::monitor::ScanMonitorSet>>,
    ) -> Result<pf_exec::monitor::ScanMonitorSet> {
        Ok(Rc::try_unwrap(h)
            .map_err(|_| Error::Internal("morsel monitor handle still shared".into()))?
            .into_inner())
    }

    /// Runs one contiguous run of an index-driven plan's RID fetch list:
    /// a private [`Fetch`] over `rids` with worker-local monitors rebuilt
    /// from `templates`, reusing `ctx`. Returns the run's fetched-row
    /// count, I/O counters, and finished per-monitor page counters for
    /// the coordinator to merge in run order (only fault-free shapes
    /// reach this path, so no retry loop is needed). The caller owns
    /// residency reconciliation: a page this run misses may be resident
    /// in the serial stream, so the summed `rand_physical_reads` must be
    /// corrected by the cross-run overlap.
    pub fn run_fetch_morsel(
        &self,
        table: TableId,
        rids: &[Rid],
        residual: &Conjunction,
        templates: Option<&[FetchTemplate]>,
        ctx: &mut ExecContext,
    ) -> Result<(u64, IoStats, Vec<LinearCounter>)> {
        let meta = self.catalog.table(table)?;
        let handle = templates.map(|ts| {
            Rc::new(RefCell::new(
                ts.iter()
                    .map(FetchTemplate::instantiate)
                    .collect::<Vec<_>>(),
            ))
        });
        let mut op = Fetch::new(
            Box::new(RidList::new(rids.to_vec())),
            Arc::clone(&meta.storage),
            table,
            residual.clone(),
            handle.clone(),
        );
        ctx.cold_start();
        ctx.fault_attempt = 0;
        let count = run_count(&mut op, ctx)?;
        drop(op);
        let counters = match handle {
            Some(h) => Rc::try_unwrap(h)
                .map_err(|_| Error::Internal("fetch morsel monitor handle still shared".into()))?
                .into_inner()
                .into_iter()
                .map(|m| m.counter)
                .collect(),
            None => Vec::new(),
        };
        Ok((count, ctx.stats(), counters))
    }

    /// Runs one build-side morsel of a parallel hash or INL join: scans
    /// `page_range` of the outer table, collecting each passing row's
    /// join key in row order. `filter` rebuilds the planner's semi-join
    /// bit-vector sizing so per-insert hash charges replicate;
    /// `charge_build_hash` mirrors the serial hash join's one hash op
    /// per build row (INL joins charge nothing per outer row).
    #[allow(clippy::too_many_arguments)]
    pub fn run_join_build_morsel(
        &self,
        scan: &MorselScan,
        template: Option<&MonitorTemplate>,
        filter: Option<(usize, u64)>,
        key_col: usize,
        charge_build_hash: bool,
        page_range: (u32, u32),
        first_random: bool,
        ctx: &mut ExecContext,
    ) -> Result<BuildMorselOutput> {
        use pf_exec::Operator;
        let meta = self.catalog.table(scan.plan.table)?;
        let handle = template.map(|t| Rc::new(RefCell::new(t.instantiate(&scan.pred))));
        let mut op = SeqScan::with_page_range(
            Arc::clone(&meta.storage),
            scan.plan.table,
            scan.pred.clone(),
            handle.clone(),
            page_range,
            first_random,
        );
        ctx.cold_start();
        ctx.fault_attempt = 0;
        let mut keys: Vec<Datum> = Vec::new();
        let mut bv = filter.map(|(numbits, seed)| BitVectorFilter::new(numbits, seed));
        if pf_exec::join::vector_enabled() {
            // Page-batched: gather the page's keys off borrowed views,
            // then bulk-insert the batch into the filter fragment. The
            // per-row charges (one build hash, one per filter insert)
            // are identical to the row loop.
            let keys = &mut keys;
            let bv = &mut bv;
            while op.next_page_rows(ctx, &mut |rows, ctx| {
                let start = keys.len();
                rows.for_each(|_slot, view| {
                    if charge_build_hash {
                        ctx.pool.charge_hashes(1);
                    }
                    keys.push(view.get(key_col).to_datum());
                    Ok(())
                })?;
                if let Some(f) = bv.as_mut() {
                    let n = f.insert_batch(keys[start..].iter().map(pf_common::DatumRef::from));
                    ctx.pool.charge_hashes(n);
                }
                Ok(())
            })? {}
        } else {
            while let Some(row) = op.next(ctx)? {
                if charge_build_hash {
                    ctx.pool.charge_hashes(1);
                }
                let key = row.get(key_col).clone();
                if let Some(f) = bv.as_mut() {
                    f.insert(&key);
                    ctx.pool.charge_hashes(1);
                }
                keys.push(key);
            }
        }
        drop(op);
        let partial = match handle {
            Some(h) => Some(Self::unwrap_scan_handle(h)?.into_partial()),
            None => None,
        };
        Ok((keys, ctx.stats(), partial, bv))
    }

    /// Runs one probe-side morsel of a parallel hash join: a full-scan
    /// page range of the inner table, counting matches against the
    /// coordinator's radix-partitioned multiplicity table. `recipe` plus
    /// the merged build filter rebuild the worker-local semi-join
    /// monitor set the serial probe scan would carry; `pushdown` makes
    /// the morsel scan carry the merged filter as a page-pass pre-filter
    /// (the scan then charges the per-row probe hash, so the loop here
    /// must not).
    #[allow(clippy::too_many_arguments)]
    pub fn run_probe_morsel(
        &self,
        inner: TableId,
        recipe: Option<(&SemiJoinRecipe, &BitVectorFilter)>,
        table: &pf_exec::RadixTable,
        probe_col: usize,
        pushdown: Option<&BitVectorFilter>,
        page_range: (u32, u32),
        ctx: &mut ExecContext,
    ) -> Result<(u64, IoStats, Option<ScanMonitorPartial>)> {
        use pf_exec::Operator;
        let meta = self.catalog.table(inner)?;
        let handle = recipe.map(|(r, f)| Rc::new(RefCell::new(r.instantiate(f.clone()))));
        let mut op = SeqScan::with_page_range(
            Arc::clone(&meta.storage),
            inner,
            Conjunction::always_true(),
            handle.clone(),
            page_range,
            false,
        );
        ctx.cold_start();
        ctx.fault_attempt = 0;
        let mut count = 0u64;
        if pf_exec::join::vector_enabled() {
            let mut prefiltered = false;
            if let Some(f) = pushdown {
                op.set_semi_join_prefilter(f.clone(), probe_col);
                prefiltered = true;
            }
            let count = &mut count;
            while op.next_page_rows(ctx, &mut |rows, ctx| {
                rows.for_each(|_slot, view| {
                    if !prefiltered {
                        ctx.pool.charge_hashes(1);
                    }
                    *count += table.matches(view.get(probe_col));
                    Ok(())
                })
            })? {}
        } else {
            while let Some(row) = op.next(ctx)? {
                ctx.pool.charge_hashes(1);
                count += table.matches(pf_common::DatumRef::from(row.get(probe_col)));
            }
        }
        drop(op);
        let partial = match handle {
            Some(h) => Some(Self::unwrap_scan_handle(h)?.into_partial()),
            None => None,
        };
        Ok((count, ctx.stats(), partial))
    }

    /// Replays the serial INL join's inner index seeks — one per outer
    /// key, in outer-row order — charging exactly the serial per-posting
    /// index-node reads, and returns the concatenated RID run the fetch
    /// morsels will cover.
    pub fn inl_rid_run(
        &self,
        inner: TableId,
        inner_col: usize,
        keys: &[Datum],
        ctx: &mut ExecContext,
    ) -> Result<Vec<Rid>> {
        let ix = self
            .catalog
            .index_on_column(inner, inner_col)
            .ok_or_else(|| Error::Internal("INL morsel plan without an inner index".into()))?;
        let mut rids = Vec::new();
        for key in keys {
            let mut seek =
                IndexSeek::new(Arc::clone(&ix.tree), ix.height, SeekRange::eq(key.clone()));
            while let Some(rid) = seek.next_rid(ctx)? {
                rids.push(rid);
            }
        }
        Ok(rids)
    }

    // ------------------------------------------------------------------
    // Ground truth (used by the evaluation methodology and tests).
    // ------------------------------------------------------------------

    /// Exact number of rows of `table` satisfying `pred` (brute force).
    pub fn true_cardinality(&self, table: &str, pred: &Conjunction) -> Result<u64> {
        let meta = self.catalog.table_by_name(table)?;
        let mut n = 0;
        for p in 0..meta.stats.pages {
            for row in meta.storage.rows_on_page(PageId(p))? {
                if pred.eval_short_circuit(&row).0 {
                    n += 1;
                }
            }
        }
        Ok(n)
    }

    /// Exact `DPC(table, pred)` (brute force).
    pub fn true_dpc(&self, table: &str, pred: &Conjunction) -> Result<u64> {
        let meta = self.catalog.table_by_name(table)?;
        let mut n = 0;
        for p in 0..meta.stats.pages {
            let any = meta
                .storage
                .rows_on_page(PageId(p))?
                .iter()
                .any(|row| pred.eval_short_circuit(row).0);
            n += u64::from(any);
        }
        Ok(n)
    }

    /// Exact `DPC(inner, join-pred)` for an equijoin whose outer side is
    /// filtered by `outer_pred`: the distinct inner pages holding at
    /// least one row whose join key appears in the filtered outer.
    pub fn true_join_dpc(
        &self,
        outer: &str,
        inner: &str,
        outer_pred: &Conjunction,
        outer_col: &str,
        inner_col: &str,
    ) -> Result<u64> {
        let outer_meta = self.catalog.table_by_name(outer)?;
        let inner_meta = self.catalog.table_by_name(inner)?;
        let oc = outer_meta.schema().index_of(outer_col)?;
        let ic = inner_meta.schema().index_of(inner_col)?;
        // Join keys are compared by 64-bit datum hash — no per-row
        // string rendering. Both sides of an equijoin are same-typed, so
        // hash equality is value equality up to 2^-64 collisions, far
        // below any tolerance the evaluation uses.
        const KEY_SEED: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut keys = std::collections::HashSet::new();
        for p in 0..outer_meta.stats.pages {
            for row in outer_meta.storage.rows_on_page(PageId(p))? {
                if outer_pred.eval_short_circuit(&row).0 {
                    keys.insert(pf_common::hash::hash_datum(row.get(oc), KEY_SEED));
                }
            }
        }
        let mut n = 0;
        for p in 0..inner_meta.stats.pages {
            let any = inner_meta
                .storage
                .rows_on_page(PageId(p))?
                .iter()
                .any(|row| keys.contains(&pf_common::hash::hash_datum(row.get(ic), KEY_SEED)));
            n += u64::from(any);
        }
        Ok(n)
    }

    /// Injects exact cardinalities for every sub-expression the
    /// optimizer consults when planning `query` — the paper's
    /// methodology ("we ensured that the plan P was generated after
    /// injecting accurate cardinality values"), which isolates the
    /// page-count effect.
    pub fn inject_accurate_cardinalities(&mut self, query: &Query) -> Result<()> {
        let mut hints = std::mem::take(&mut self.hints);
        let injected = self.inject_cardinalities_into(query, &mut hints);
        self.hints = hints;
        self.plan_cache.invalidate();
        injected
    }

    /// The same injection, but into a caller-provided hint set — used by
    /// hermetic feedback cells whose overlays must not mutate `self`.
    pub fn inject_cardinalities_into(&self, query: &Query, hints: &mut HintSet) -> Result<()> {
        match query {
            Query::Count {
                table, predicate, ..
            } => {
                let schema = self.catalog.table_by_name(table)?.schema().clone();
                let pred = Query::resolve_predicates(predicate, &schema)?;
                self.inject_pred_cardinalities(table, &pred, hints)
            }
            Query::JoinCount {
                outer, outer_pred, ..
            } => {
                let schema = self.catalog.table_by_name(outer)?.schema().clone();
                let pred = Query::resolve_predicates(outer_pred, &schema)?;
                self.inject_pred_cardinalities(outer, &pred, hints)
            }
        }
    }

    fn inject_pred_cardinalities(
        &self,
        table: &str,
        pred: &Conjunction,
        hints: &mut HintSet,
    ) -> Result<()> {
        // Atoms, indexed pairs, and the full conjunction — everything the
        // access-path enumeration consults.
        let mut subsets: Vec<Vec<usize>> = (0..pred.len()).map(|i| vec![i]).collect();
        for i in 0..pred.len() {
            for j in i + 1..pred.len() {
                subsets.push(vec![i, j]);
            }
        }
        if pred.len() > 2 {
            subsets.push((0..pred.len()).collect());
        }
        for idx in subsets {
            let sub = Conjunction::new(idx.iter().map(|&i| pred.atoms[i].clone()).collect());
            let n = self.true_cardinality(table, &sub)?;
            hints.inject_cardinality(table, pred.key_of(&idx), n as f64);
        }
        Ok(())
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::PredSpec;
    use pf_common::{Column, DataType, Datum};
    use pf_exec::CompareOp;

    /// 20 000 rows clustered on `id`; `corr` == id (fully correlated),
    /// `scat` a scrambled permutation.
    fn demo_db() -> Database {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("corr", DataType::Int),
            Column::new("scat", DataType::Int),
            Column::new("pad", DataType::Str),
        ]);
        let n = 20_000i64;
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Datum::Int(i),
                    Datum::Int(i),
                    Datum::Int((i * 7919) % n),
                    Datum::Str("x".repeat(60)),
                ])
            })
            .collect();
        db.create_table("t", schema, rows, Some("id")).unwrap();
        db.create_index("ix_corr", "t", "corr").unwrap();
        db.create_index("ix_scat", "t", "scat").unwrap();
        db.analyze().unwrap();
        db
    }

    fn q(col: &str, v: i64) -> Query {
        Query::count("t", vec![PredSpec::new(col, CompareOp::Lt, Datum::Int(v))])
    }

    #[test]
    fn run_returns_correct_count() {
        let db = demo_db();
        let out = db.run(&q("corr", 400), &MonitorConfig::off()).unwrap();
        assert_eq!(out.count, 400);
        assert!(out.elapsed_ms > 0.0);
        assert!(out.report.measurements.is_empty());
    }

    #[test]
    fn monitored_run_reports_dpc() {
        let db = demo_db();
        let out = db.run(&q("corr", 400), &MonitorConfig::default()).unwrap();
        assert_eq!(out.count, 400);
        assert!(!out.report.measurements.is_empty());
        // The measured DPC must match brute force.
        let schema = db.catalog().table_by_name("t").unwrap().schema().clone();
        let pred = Query::resolve_predicates(
            &[PredSpec::new("corr", CompareOp::Lt, Datum::Int(400))],
            &schema,
        )
        .unwrap();
        let truth = db.true_dpc("t", &pred).unwrap() as f64;
        let measured = out.report.actual_for("t", "corr<400").unwrap();
        // Scan plans count exactly... unless the chosen plan was an index
        // plan (linear counting); allow a small tolerance.
        assert!(
            (measured - truth).abs() / truth.max(1.0) < 0.1,
            "measured {measured}, truth {truth}"
        );
    }

    #[test]
    fn analytical_overestimates_correlated_dpc() {
        let db = demo_db();
        let out = db.run(&q("corr", 400), &MonitorConfig::default()).unwrap();
        let m = out
            .report
            .measurements
            .iter()
            .find(|m| m.expression == "corr<400")
            .unwrap();
        let est = m.estimated.unwrap();
        assert!(
            est > m.actual * 10.0,
            "analytical {est} should dwarf actual {}",
            m.actual
        );
    }

    #[test]
    fn injection_changes_plan() {
        let mut db = demo_db();
        let query = q("corr", 400);
        let before = db.run(&query, &MonitorConfig::default()).unwrap();
        assert_eq!(before.choice.name(), "TableScan");
        db.hints_mut().absorb_report(&before.report);
        let after = db.run(&query, &MonitorConfig::off()).unwrap();
        assert_eq!(after.choice.name(), "IndexSeek");
        assert_eq!(after.count, before.count, "plans agree on the answer");
        assert!(after.elapsed_ms < before.elapsed_ms / 2.0);
    }

    #[test]
    fn true_cardinality_and_dpc() {
        let db = demo_db();
        let schema = db.catalog().table_by_name("t").unwrap().schema().clone();
        let pred = Query::resolve_predicates(
            &[PredSpec::new("id", CompareOp::Lt, Datum::Int(123))],
            &schema,
        )
        .unwrap();
        assert_eq!(db.true_cardinality("t", &pred).unwrap(), 123);
        let dpc = db.true_dpc("t", &pred).unwrap();
        let rpp = db.catalog().table_by_name("t").unwrap().stats.rows_per_page;
        assert_eq!(dpc, (123.0 / rpp).ceil() as u64);
    }

    #[test]
    fn stats_required_before_optimizing() {
        let mut db = Database::new();
        let schema = Schema::new(vec![Column::new("a", DataType::Int)]);
        db.create_table("t", schema, vec![Row::new(vec![Datum::Int(1)])], None)
            .unwrap();
        assert!(db.run(&q("a", 1), &MonitorConfig::off()).is_err());
    }

    #[test]
    fn cancelled_query_leaves_no_trace() {
        let db = demo_db();
        let query = q("corr", 400);
        let cfg = MonitorConfig::default();
        let before = db.plan_cache_stats();
        assert_eq!(before.entries, 0);
        let err = db
            .run_query_cancellable(&query, &cfg, CancelToken::cancel_after(0))
            .unwrap_err();
        assert_eq!(err, Error::Cancelled);
        let after = db.plan_cache_stats();
        assert_eq!(
            after.entries, 0,
            "an aborted run must not populate the plan cache"
        );
        // An unarmed token lets the identical call complete normally.
        let ok = db
            .run_query_cancellable(&query, &cfg, CancelToken::new())
            .unwrap();
        assert_eq!(ok.count, 400);
        assert!(!ok.report.measurements.is_empty());
    }

    #[test]
    fn externally_tripped_token_aborts_mid_run() {
        let db = demo_db();
        let token = CancelToken::new();
        token.cancel();
        let err = db
            .run_query_cancellable(&q("corr", 400), &MonitorConfig::off(), token)
            .unwrap_err();
        assert_eq!(err, Error::Cancelled);
    }

    #[test]
    fn deadline_aborts_on_the_simulated_clock_and_is_deterministic() {
        let db = demo_db();
        let query = q("id", 19_999); // near-full scan: plenty of pages
        let cfg = MonitorConfig::off();
        let err = db.run_query_with_deadline(&query, &cfg, 0).unwrap_err();
        assert_eq!(err, Error::DeadlineExceeded { deadline_ms: 0 });
        let again = db.run_query_with_deadline(&query, &cfg, 0).unwrap_err();
        assert_eq!(
            err, again,
            "the abort point is a pure function of the query"
        );
        // A generous deadline completes bit-identically to a plain run.
        let plain = db.run(&query, &cfg).unwrap();
        let under = db.run_query_with_deadline(&query, &cfg, 1_000_000).unwrap();
        assert_eq!(under.count, plain.count);
        assert_eq!(under.stats, plain.stats);
        assert_eq!(under.elapsed_ms, plain.elapsed_ms);
    }

    #[test]
    fn inject_accurate_cardinalities_covers_atoms_and_pairs() {
        let mut db = demo_db();
        let query = Query::count(
            "t",
            vec![
                PredSpec::new("corr", CompareOp::Lt, Datum::Int(100)),
                PredSpec::new("scat", CompareOp::Lt, Datum::Int(10_000)),
            ],
        );
        db.inject_accurate_cardinalities(&query).unwrap();
        assert_eq!(db.hints().cardinality("t", "corr<100"), Some(100.0));
        assert!(db
            .hints()
            .cardinality("t", "corr<100 AND scat<10000")
            .is_some());
    }
}
