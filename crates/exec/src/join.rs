//! RE-side joins: Hash, Index-Nested-Loops, and Merge — Section IV.
//!
//! The join operators run in the relational engine, where PIDs are not
//! visible. Monitoring the DPC an *INL join* would incur therefore works
//! differently per current plan:
//!
//! * [`InlJoin`] — the inner fetches go through the storage engine, so a
//!   linear counter on the inner Fetch observes the DPC directly;
//! * [`HashJoin`] — builds a bit-vector over outer join keys during the
//!   build phase and installs it into the probe-side scan's
//!   [`SemiJoinSlot`] (the SE→RE callback of Section V-A), where the
//!   scan's monitor counts pages with ≥1 filter hit (Fig 5);
//! * [`MergeJoin`] — when the outer child is blocking (a Sort), the full
//!   bit vector exists before the inner is scanned and the same
//!   mechanism applies.

use crate::context::ExecContext;
use crate::expr::Conjunction;
use crate::index::{Fetch, IndexSeek, SeekRange};
use crate::join_table::{join_partitions, RadixTable};
use crate::monitor::{FetchMonitorHandle, SemiJoinSlot};
use crate::op::Operator;
use pf_common::{Datum, DatumRef, Error, Result, Row, Schema, TableId};
use pf_feedback::BitVectorFilter;
use pf_storage::btree::BPlusTree;
use pf_storage::TableStorage;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Whether the vectorized join pipeline (radix-partitioned build,
/// page-batched probe, semi-join filter pushdown) is enabled. The
/// `PF_JOIN_VECTOR` escape hatch (`off` or `0`) forces the row-at-a-time
/// reference path — counts, sketches, reports, and I/O statistics are
/// bit-identical either way.
pub fn vector_enabled() -> bool {
    pf_common::env_switch("PF_JOIN_VECTOR", true)
}

/// Seed for the radix build table's key hashing (internal layout only —
/// never observable in results or charges).
const BUILD_TABLE_SEED: u64 = 0x5EED_B01D_FACE_D0E5;

/// Configuration for the bit-vector filter a join builds for monitoring.
#[derive(Debug, Clone)]
pub struct BitVectorConfig {
    /// The slot shared with the probe-side scan's monitor.
    pub slot: SemiJoinSlot,
    /// Filter size in bits.
    pub numbits: usize,
    /// Hash seed.
    pub seed: u64,
    /// Planner decision: push the completed filter into the probe-side
    /// scan as a pre-filter (vectorized hash joins only; merge joins
    /// never push — a probe-side Sort charges hashes on its *input*
    /// cardinality, so culling would change I/O statistics).
    pub pushdown: bool,
}

/// The hash join's build side: the row-at-a-time reference
/// representation, or the vectorized radix-partitioned table (which
/// stores chained rows only when the join is driven row-at-a-time —
/// counting drivers keep multiplicities only).
enum BuildTable {
    Legacy(HashMap<Datum, Vec<Row>>),
    Radix(RadixTable),
}

/// In-memory hash join (equijoin on one column per side).
///
/// Output rows are `build_row ++ probe_row`.
pub struct HashJoin {
    build: Box<dyn Operator>,
    probe: Box<dyn Operator>,
    build_key: usize,
    probe_key: usize,
    bitvector: Option<BitVectorConfig>,
    schema: Schema,
    table: BuildTable,
    built: bool,
    /// Rows were not stored at build time (counting-driver mode); a
    /// subsequent row pull is a driver bug, not an empty join.
    count_mode: bool,
    /// The probe scan carries the pushed-down prefilter, which charges
    /// one hash per row it tests — so the join must not charge its own
    /// per-probe-row hash on top.
    prefiltered: bool,
    vectorized: bool,
    partitions: usize,
    pending: VecDeque<Row>,
}

impl HashJoin {
    /// Builds a hash join; `bitvector` enables DPC monitoring (Fig 5).
    pub fn new(
        build: Box<dyn Operator>,
        probe: Box<dyn Operator>,
        build_key: usize,
        probe_key: usize,
        bitvector: Option<BitVectorConfig>,
    ) -> Self {
        let schema = build.schema().join(probe.schema());
        HashJoin {
            build,
            probe,
            build_key,
            probe_key,
            bitvector,
            schema,
            table: BuildTable::Legacy(HashMap::new()),
            built: false,
            count_mode: false,
            prefiltered: false,
            vectorized: vector_enabled(),
            partitions: join_partitions(0.0),
            pending: VecDeque::new(),
        }
    }

    /// Sets the radix-partition count (the planner derives it from the
    /// estimated build cardinality; the default is the unpartitioned
    /// layout). Purely internal layout — results are identical for any
    /// count.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Whether this join runs the vectorized pipeline.
    pub fn is_vectorized(&self) -> bool {
        self.vectorized
    }

    /// Row-at-a-time reference build: per-row `HashMap` inserts.
    fn build_phase_legacy(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let mut filter = self
            .bitvector
            .as_ref()
            .map(|c| BitVectorFilter::new(c.numbits, c.seed));
        let BuildTable::Legacy(table) = &mut self.table else {
            return Err(Error::Internal("legacy build over radix table".into()));
        };
        while let Some(row) = self.build.next(ctx)? {
            // RE-side checkpoint: the build input may be a RID list or
            // another join, so the SE-side page checks don't cover it.
            ctx.check_interrupt()?;
            ctx.pool.charge_hashes(1);
            if let Some(f) = filter.as_mut() {
                f.insert(row.get(self.build_key));
                ctx.pool.charge_hashes(1);
            }
            // Clone the key only on its first occurrence: repeated keys
            // (the common case for a skewed build side) take the
            // `get_mut` fast path without allocating.
            match table.get_mut(row.get(self.build_key)) {
                Some(bucket) => bucket.push(row),
                None => {
                    let key = row.get(self.build_key).clone();
                    table.insert(key, vec![row]);
                }
            }
        }
        if let (Some(f), Some(c)) = (filter, &self.bitvector) {
            // The SE→RE callback: hand the filter to the probe-side scan
            // before any probe row flows.
            c.slot.borrow_mut().filter = Some(f);
        }
        self.built = true;
        Ok(())
    }

    /// Vectorized build: page-at-a-time over the build scan into the
    /// radix-partitioned table, with per-page bulk filter inserts. The
    /// per-row charges (one hash per build row, one per filter insert)
    /// are identical to the reference path; only the allocation work
    /// and the checkpoint granularity (page instead of row) differ.
    fn build_phase_vectorized(&mut self, ctx: &mut ExecContext, store_rows: bool) -> Result<()> {
        let mut filter = self
            .bitvector
            .as_ref()
            .map(|c| BitVectorFilter::new(c.numbits, c.seed));
        let mut table = RadixTable::new(self.partitions, BUILD_TABLE_SEED);
        let build_key = self.build_key;
        match self
            .build
            .as_seq_scan()
            .filter(|s| s.supports_page_visits())
        {
            Some(scan) => {
                let filter = &mut filter;
                let table = &mut table;
                while scan.next_page_rows(ctx, &mut |rows, ctx| {
                    rows.for_each(|_slot, view| {
                        let key = view.get(build_key);
                        ctx.pool.charge_hashes(1);
                        if let Some(f) = filter.as_mut() {
                            f.insert_ref(key);
                            ctx.pool.charge_hashes(1);
                        }
                        table.insert(key, store_rows.then(|| view.materialize()));
                        Ok(())
                    })
                })? {}
            }
            None => {
                // Non-scan build input (an index fetch, another join):
                // keep the row pull but build the radix table.
                while let Some(row) = self.build.next(ctx)? {
                    ctx.check_interrupt()?;
                    ctx.pool.charge_hashes(1);
                    if let Some(f) = filter.as_mut() {
                        f.insert(row.get(build_key));
                        ctx.pool.charge_hashes(1);
                    }
                    if store_rows {
                        let key = row.get(build_key).clone();
                        table.insert(DatumRef::from(&key), Some(row));
                    } else {
                        table.insert(DatumRef::from(row.get(build_key)), None);
                    }
                }
            }
        }
        self.count_mode = !store_rows;
        if let (Some(f), Some(c)) = (filter, &self.bitvector) {
            if c.pushdown {
                if let Some(scan) = self
                    .probe
                    .as_seq_scan()
                    .filter(|s| s.supports_page_visits())
                {
                    // Filter pushdown: the completed build-side filter
                    // culls probe rows inside the scan's page pass. The
                    // scan charges the per-row probe hash from here on.
                    scan.set_semi_join_prefilter(f.clone(), self.probe_key);
                    self.prefiltered = true;
                }
            }
            c.slot.borrow_mut().filter = Some(f);
        }
        self.table = BuildTable::Radix(table);
        self.built = true;
        Ok(())
    }
}

impl Operator for HashJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if !self.built {
            if self.vectorized {
                self.build_phase_vectorized(ctx, true)?;
            } else {
                self.build_phase_legacy(ctx)?;
            }
        }
        if self.count_mode {
            return Err(Error::Internal(
                "hash join built for counting cannot deliver rows".into(),
            ));
        }
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            let Some(probe_row) = self.probe.next(ctx)? else {
                return Ok(None);
            };
            ctx.check_interrupt()?;
            if !self.prefiltered {
                ctx.pool.charge_hashes(1);
            }
            match &self.table {
                BuildTable::Legacy(table) => {
                    if let Some(matches) = table.get(probe_row.get(self.probe_key)) {
                        for b in matches {
                            self.pending.push_back(b.join(&probe_row));
                        }
                    }
                }
                BuildTable::Radix(table) => {
                    for b in table.rows_for(DatumRef::from(probe_row.get(self.probe_key))) {
                        self.pending.push_back(b.join(&probe_row));
                    }
                }
            }
        }
    }

    fn next_count(&mut self, ctx: &mut ExecContext) -> Result<Option<u64>> {
        if !self.vectorized {
            // Reference path: row-at-a-time probe with materialized
            // matches, exactly as before vectorization.
            return Ok(self.next(ctx)?.map(|_| 1));
        }
        if !self.built {
            self.build_phase_vectorized(ctx, false)?;
        }
        let table = match &self.table {
            BuildTable::Radix(t) => t,
            BuildTable::Legacy(_) => {
                return Err(Error::Internal("vectorized probe over legacy table".into()))
            }
        };
        let probe_key = self.probe_key;
        let prefiltered = self.prefiltered;
        match self
            .probe
            .as_seq_scan()
            .filter(|s| s.supports_page_visits())
        {
            Some(scan) => {
                // Page-batched probe: gather the page's join keys from
                // borrowed views and count matches in a tight loop —
                // no probe row is ever materialized.
                let mut total = 0u64;
                let more = scan.next_page_rows(ctx, &mut |rows, ctx| {
                    rows.for_each(|_slot, view| {
                        if !prefiltered {
                            ctx.pool.charge_hashes(1);
                        }
                        total += table.matches(view.get(probe_key));
                        Ok(())
                    })
                })?;
                if more {
                    Ok(Some(total))
                } else {
                    Ok(None)
                }
            }
            None => {
                let Some(probe_row) = self.probe.next(ctx)? else {
                    return Ok(None);
                };
                ctx.check_interrupt()?;
                if !prefiltered {
                    ctx.pool.charge_hashes(1);
                }
                Ok(Some(
                    table.matches(DatumRef::from(probe_row.get(probe_key))),
                ))
            }
        }
    }
}

/// Index Nested Loops join: for each outer row, seek the inner table's
/// nonclustered index on the join column and fetch matching rows.
///
/// Output rows are `outer_row ++ inner_row`. The `inner_monitors` handle
/// (observing `AllFetched`) measures `DPC(inner, join-pred)` directly
/// with linear counting — the Section IV INL case.
pub struct InlJoin {
    outer: Box<dyn Operator>,
    inner_tree: Arc<BPlusTree>,
    inner_height: u32,
    inner_storage: Arc<TableStorage>,
    inner_table_id: TableId,
    outer_key: usize,
    /// Residual predicate on the joined (outer ++ inner) row.
    residual: Conjunction,
    inner_monitors: Option<FetchMonitorHandle>,
    schema: Schema,
    pending: VecDeque<Row>,
}

impl InlJoin {
    /// Builds an INL join probing `inner_tree` (an index on the inner
    /// join column).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        outer: Box<dyn Operator>,
        outer_key: usize,
        inner_tree: Arc<BPlusTree>,
        inner_height: u32,
        inner_storage: Arc<TableStorage>,
        inner_table_id: TableId,
        residual: Conjunction,
        inner_monitors: Option<FetchMonitorHandle>,
    ) -> Self {
        let schema = outer.schema().join(inner_storage.schema());
        InlJoin {
            outer,
            inner_tree,
            inner_height,
            inner_storage,
            inner_table_id,
            outer_key,
            residual,
            inner_monitors,
            schema,
            pending: VecDeque::new(),
        }
    }
}

impl Operator for InlJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            let Some(outer_row) = self.outer.next(ctx)? else {
                return Ok(None);
            };
            // One checkpoint per outer row: each drives a fresh index
            // seek + fetch, so this is the INL page-ish granularity.
            ctx.check_interrupt()?;
            let key = outer_row.get(self.outer_key).clone();
            // One index lookup per outer row.
            let seek = IndexSeek::new(
                Arc::clone(&self.inner_tree),
                self.inner_height,
                SeekRange::eq(key),
            );
            let mut fetch = Fetch::new(
                Box::new(seek),
                Arc::clone(&self.inner_storage),
                self.inner_table_id,
                Conjunction::always_true(),
                self.inner_monitors.clone(),
            );
            while let Some(inner_row) = fetch.next(ctx)? {
                let joined = outer_row.join(&inner_row);
                let (pass, evaluated) = self.residual.eval_short_circuit(&joined);
                ctx.pool.charge_pred_evals(evaluated as u64);
                if pass {
                    self.pending.push_back(joined);
                }
            }
        }
    }
}

/// Merge join over inputs sorted on their join keys.
///
/// The outer (left) input is **materialized at open** — the paper's
/// "outer child is a Sort" case, where the blocking `GetNext` lets the
/// bit vector be completed before the inner is scanned; with `bitvector`
/// set, the filter is installed into the probe-side slot at that point.
/// Output rows are `left_row ++ right_row`.
pub struct MergeJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    bitvector: Option<BitVectorConfig>,
    schema: Schema,
    left_rows: Option<Vec<Row>>,
    /// Current equal-key group in `left_rows`.
    group: (usize, usize),
    group_key: Option<Datum>,
    left_pos: usize,
    pending: VecDeque<Row>,
}

impl MergeJoin {
    /// Builds a merge join (inputs must already be key-sorted).
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
        bitvector: Option<BitVectorConfig>,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        MergeJoin {
            left,
            right,
            left_key,
            right_key,
            bitvector,
            schema,
            left_rows: None,
            group: (0, 0),
            group_key: None,
            left_pos: 0,
            pending: VecDeque::new(),
        }
    }

    fn open_left(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let mut rows = Vec::new();
        while let Some(r) = self.left.next(ctx)? {
            rows.push(r);
        }
        debug_assert!(
            rows.windows(2).all(|w| {
                w[0].get(self.left_key)
                    .cmp_same_type(w[1].get(self.left_key))
                    .is_some_and(|o| o != std::cmp::Ordering::Greater)
            }),
            "merge-join left input not sorted"
        );
        if let Some(c) = &self.bitvector {
            let mut f = BitVectorFilter::new(c.numbits, c.seed);
            for r in &rows {
                f.insert(r.get(self.left_key));
                ctx.pool.charge_hashes(1);
            }
            c.slot.borrow_mut().filter = Some(f);
        }
        self.left_rows = Some(rows);
        Ok(())
    }

    /// Positions `group` on the run of left rows with key == `key`
    /// (advancing monotonically).
    fn advance_group(&mut self, key: &Datum, ctx: &mut ExecContext) {
        let rows = self.left_rows.as_ref().expect("left opened");
        if self.group_key.as_ref() == Some(key) {
            return;
        }
        use std::cmp::Ordering;
        let mut i = self.left_pos;
        while i < rows.len() {
            ctx.pool.charge_hashes(1); // comparison ~ cheap CPU op
            match rows[i]
                .get(self.left_key)
                .cmp_same_type(key)
                .expect("join keys same-typed")
            {
                Ordering::Less => i += 1,
                _ => break,
            }
        }
        let start = i;
        let mut end = i;
        while end < rows.len()
            && rows[end].get(self.left_key).cmp_same_type(key) == Some(std::cmp::Ordering::Equal)
        {
            end += 1;
        }
        self.left_pos = start;
        self.group = (start, end);
        self.group_key = Some(key.clone());
    }
}

impl Operator for MergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if self.left_rows.is_none() {
            self.open_left(ctx)?;
        }
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            let Some(right_row) = self.right.next(ctx)? else {
                return Ok(None);
            };
            let key = right_row.get(self.right_key).clone();
            self.advance_group(&key, ctx);
            let (s, e) = self.group;
            let rows = self.left_rows.as_ref().expect("left opened");
            for l in &rows[s..e] {
                self.pending.push_back(l.join(&right_row));
            }
        }
    }
}

/// Streaming merge join over inputs already sorted on their join keys —
/// the "no Sorts on either input" case of Section IV, using **partial
/// bit-vector filters**.
///
/// Neither side is materialized. As each left (outer) row is consumed,
/// its key is inserted into the (initially empty) filter in the shared
/// [`SemiJoinSlot`]. Correctness of the partial filter rests on the
/// merge invariant the paper cites: the right (inner) pointer only
/// advances past key `k` once the left pointer has consumed every key
/// `≤ k` — so at the moment the probe-side scan delivers a row (use
/// [`crate::scan::SeqScan::with_deferred_monitoring`]), all outer keys
/// that could match it are already in the filter.
pub struct StreamingMergeJoin {
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    bitvector: Option<BitVectorConfig>,
    schema: Schema,
    /// Current left group: rows sharing `group_key`.
    group: Vec<Row>,
    group_key: Option<Datum>,
    /// Left row read past the current group.
    left_ahead: Option<Row>,
    left_done: bool,
    opened: bool,
    pending: VecDeque<Row>,
}

impl StreamingMergeJoin {
    /// Builds a streaming merge join (inputs must be key-sorted).
    pub fn new(
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
        bitvector: Option<BitVectorConfig>,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        StreamingMergeJoin {
            left,
            right,
            left_key,
            right_key,
            bitvector,
            schema,
            group: Vec::new(),
            group_key: None,
            left_ahead: None,
            left_done: false,
            opened: false,
            pending: VecDeque::new(),
        }
    }

    fn open(&mut self) {
        // Install an *empty* filter immediately: it grows as the left
        // side is consumed (the partial-filter regime).
        if let Some(c) = &self.bitvector {
            c.slot.borrow_mut().filter = Some(BitVectorFilter::new(c.numbits, c.seed));
        }
        self.opened = true;
    }

    /// Pulls one left row, recording its key into the partial filter.
    fn pull_left(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        let row = self.left.next(ctx)?;
        if let (Some(r), Some(c)) = (&row, &self.bitvector) {
            if let Some(f) = c.slot.borrow_mut().filter.as_mut() {
                f.insert(r.get(self.left_key));
                ctx.pool.charge_hashes(1);
            }
        }
        Ok(row)
    }

    /// Advances the left group until `group_key >= key`.
    fn advance_left_to(&mut self, key: &Datum, ctx: &mut ExecContext) -> Result<()> {
        use std::cmp::Ordering;
        loop {
            if self.group_key.as_ref().is_some_and(|g| {
                g.cmp_same_type(key).expect("join keys same-typed") != Ordering::Less
            }) {
                return Ok(());
            }
            if self.left_done {
                self.group.clear();
                self.group_key = None;
                return Ok(());
            }
            // Start the next group from the look-ahead row (or stream).
            let first = match self.left_ahead.take() {
                Some(r) => Some(r),
                None => self.pull_left(ctx)?,
            };
            let Some(first) = first else {
                self.left_done = true;
                continue;
            };
            let k = first.get(self.left_key).clone();
            self.group.clear();
            self.group.push(first);
            loop {
                match self.pull_left(ctx)? {
                    Some(r) if r.get(self.left_key).cmp_same_type(&k) == Some(Ordering::Equal) => {
                        self.group.push(r);
                    }
                    Some(r) => {
                        self.left_ahead = Some(r);
                        break;
                    }
                    None => {
                        self.left_done = true;
                        break;
                    }
                }
            }
            self.group_key = Some(k);
            ctx.pool.charge_hashes(1); // group comparison
        }
    }
}

impl Operator for StreamingMergeJoin {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if !self.opened {
            self.open();
        }
        loop {
            if let Some(row) = self.pending.pop_front() {
                return Ok(Some(row));
            }
            let Some(right_row) = self.right.next(ctx)? else {
                // Drain the remaining left side so the partial filter
                // finishes complete (harvests then reflect the full
                // outer, matching the paper's accounting).
                while !self.left_done {
                    if self.pull_left(ctx)?.is_none() {
                        self.left_done = true;
                    }
                }
                return Ok(None);
            };
            let key = right_row.get(self.right_key).clone();
            self.advance_left_to(&key, ctx)?;
            if self.group_key.as_ref() == Some(&key) {
                for l in &self.group {
                    self.pending.push_back(l.join(&right_row));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AtomicPredicate, CompareOp};
    use crate::monitor::{
        semi_join_slot, FetchMonitor, FetchObserveWhen, ScanExprMonitor, ScanMonitorSet,
    };
    use crate::op::{drain, run_count};
    use crate::scan::SeqScan;
    use crate::sort::Sort;
    use pf_common::{Column, DataType};
    use pf_feedback::FeedbackReport;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Two tables: `outer(k, tag)` clustered on k with keys 0..n,
    /// `inner(id, k, pad)` clustered on id with k scrambled.
    fn setup(n: i64) -> (Arc<TableStorage>, Arc<TableStorage>, Arc<BPlusTree>, u32) {
        let outer_schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("tag", DataType::Str),
        ]);
        let outer_rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Datum::Int(i), Datum::Str("o".into())]))
            .collect();
        let outer = Arc::new(
            TableStorage::bulk_load(outer_schema, &outer_rows, Some(0), 1024, 1.0)
                .expect("bulk load test table"),
        );

        let inner_schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("k", DataType::Int),
            Column::new("pad", DataType::Str),
        ]);
        let inner_rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Datum::Int(i),
                    Datum::Int((i * 7919) % n),
                    Datum::Str("x".repeat(30)),
                ])
            })
            .collect();
        let inner = Arc::new(
            TableStorage::bulk_load(inner_schema, &inner_rows, Some(0), 1024, 1.0)
                .expect("bulk load test table"),
        );
        let mut tree = BPlusTree::new();
        for rid in inner.all_rids() {
            let row = inner.read_row(rid).expect("rid points at a loaded row");
            tree.insert(row.get(1).clone(), rid);
        }
        let h = tree.height();
        (outer, inner, Arc::new(tree), h)
    }

    fn outer_scan(outer: &Arc<TableStorage>, hi: i64) -> SeqScan {
        let pred = Conjunction::new(vec![AtomicPredicate::new(
            outer.schema(),
            "k",
            CompareOp::Lt,
            Datum::Int(hi),
        )
        .expect("test value is well-formed")]);
        SeqScan::full(Arc::clone(outer), TableId(0), pred, None)
    }

    #[test]
    fn hash_join_matches_nested_loop_semantics() {
        let (outer, inner, _, _) = setup(300);
        let build = outer_scan(&outer, 50);
        let probe = SeqScan::full(
            Arc::clone(&inner),
            TableId(1),
            Conjunction::always_true(),
            None,
        );
        let mut hj = HashJoin::new(Box::new(build), Box::new(probe), 0, 1, None);
        let mut ctx = ExecContext::new(8192);
        let rows = drain(&mut hj, &mut ctx).expect("plan drains without error");
        // Each outer key 0..50 matches exactly one inner row.
        assert_eq!(rows.len(), 50);
        for r in &rows {
            assert_eq!(r.get(0), r.get(3), "join keys equal");
        }
    }

    #[test]
    fn inl_join_same_result_as_hash_join() {
        let (outer, inner, tree, h) = setup(300);
        let mut ctx = ExecContext::new(8192);

        let build = outer_scan(&outer, 80);
        let probe = SeqScan::full(
            Arc::clone(&inner),
            TableId(1),
            Conjunction::always_true(),
            None,
        );
        let mut hj = HashJoin::new(Box::new(build), Box::new(probe), 0, 1, None);
        let mut hash_keys: Vec<i64> = drain(&mut hj, &mut ctx)
            .expect("test value is well-formed")
            .iter()
            .map(|r| r.get(0).as_int().expect("int column"))
            .collect();
        hash_keys.sort_unstable();

        ctx.cold_start();
        let outer_op = outer_scan(&outer, 80);
        let mut inl = InlJoin::new(
            Box::new(outer_op),
            0,
            tree,
            h,
            Arc::clone(&inner),
            TableId(1),
            Conjunction::always_true(),
            None,
        );
        let mut inl_keys: Vec<i64> = drain(&mut inl, &mut ctx)
            .expect("test value is well-formed")
            .iter()
            .map(|r| r.get(0).as_int().expect("int column"))
            .collect();
        inl_keys.sort_unstable();
        assert_eq!(hash_keys, inl_keys);
    }

    #[test]
    fn inl_monitor_measures_join_dpc() {
        let (outer, inner, tree, h) = setup(2_000);
        let monitors = Rc::new(RefCell::new(vec![FetchMonitor::new(
            "outer.k=inner.k",
            FetchObserveWhen::AllFetched,
            inner.page_count(),
            None,
            4,
        )]));
        let outer_op = outer_scan(&outer, 300);
        let mut inl = InlJoin::new(
            Box::new(outer_op),
            0,
            tree,
            h,
            Arc::clone(&inner),
            TableId(1),
            Conjunction::always_true(),
            Some(Rc::clone(&monitors)),
        );
        let mut ctx = ExecContext::new(32_768);
        run_count(&mut inl, &mut ctx).expect("plan drains without error");
        // Ground truth: distinct inner pages holding k < 300.
        let mut truth = std::collections::HashSet::new();
        for p in 0..inner.page_count() {
            for r in inner
                .rows_on_page(pf_common::PageId(p))
                .expect("page id within table")
            {
                if r.get(1).as_int().expect("int column") < 300 {
                    truth.insert(p);
                }
            }
        }
        let mut rep = FeedbackReport::new();
        monitors.borrow()[0].harvest("inner", &mut rep);
        let est = rep.measurements[0].actual;
        // The counter is sized at ~1 bit/page (paper's sizing); at the
        // high load factor of this dense join, expect ≲20 % error.
        let err = (est - truth.len() as f64).abs() / truth.len() as f64;
        assert!(err < 0.20, "estimate {est}, truth {}", truth.len());
    }

    #[test]
    fn hash_join_bitvector_measures_inl_dpc() {
        let (outer, inner, _, _) = setup(2_000);
        let slot = semi_join_slot(1); // probe-side key column is `k` (#1)
        let scan_monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
            vec![ScanExprMonitor::semi_join(
                "outer.k=inner.k",
                Rc::clone(&slot),
                None,
            )],
            1.0,
            5,
        )));
        let build = outer_scan(&outer, 300);
        let probe = SeqScan::full(
            Arc::clone(&inner),
            TableId(1),
            Conjunction::always_true(),
            Some(Rc::clone(&scan_monitors)),
        );
        let mut hj = HashJoin::new(
            Box::new(build),
            Box::new(probe),
            0,
            1,
            Some(BitVectorConfig {
                slot: Rc::clone(&slot),
                numbits: 4096,
                seed: 11,
                pushdown: false,
            }),
        );
        let mut ctx = ExecContext::new(32_768);
        let n = run_count(&mut hj, &mut ctx).expect("plan drains without error");
        assert_eq!(n, 300);

        let mut truth = std::collections::HashSet::new();
        for p in 0..inner.page_count() {
            for r in inner
                .rows_on_page(pf_common::PageId(p))
                .expect("page id within table")
            {
                if r.get(1).as_int().expect("int column") < 300 {
                    truth.insert(p);
                }
            }
        }
        let mut rep = FeedbackReport::new();
        scan_monitors.borrow_mut().harvest("inner", &mut rep);
        let est = rep.measurements[0].actual;
        // The collision-corrected estimate is unbiased, not one-sided;
        // this dense join (15 % of keys on the build side) at 4 096 bits
        // is the correction's noisiest regime, so allow ±25 %.
        let t = truth.len() as f64;
        assert!(
            (t * 0.75..=t * 1.25).contains(&est),
            "est {est} vs truth {t}"
        );
    }

    #[test]
    fn merge_join_with_sorted_inputs() {
        let (outer, inner, _, _) = setup(300);
        let left = Sort::new(Box::new(outer_scan(&outer, 120)), 0);
        let right = Sort::new(
            Box::new(SeqScan::full(
                Arc::clone(&inner),
                TableId(1),
                Conjunction::always_true(),
                None,
            )),
            1,
        );
        let mut mj = MergeJoin::new(Box::new(left), Box::new(right), 0, 1, None);
        let mut ctx = ExecContext::new(8192);
        let rows = drain(&mut mj, &mut ctx).expect("plan drains without error");
        assert_eq!(rows.len(), 120);
        for r in &rows {
            assert_eq!(r.get(0), r.get(3));
        }
    }

    #[test]
    fn merge_join_bitvector_installed_before_inner() {
        let (outer, inner, _, _) = setup(500);
        let slot = semi_join_slot(1);
        let scan_monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
            vec![ScanExprMonitor::semi_join("jp", Rc::clone(&slot), None)],
            1.0,
            6,
        )));
        let left = Sort::new(Box::new(outer_scan(&outer, 100)), 0);
        let right = Sort::new(
            Box::new(SeqScan::full(
                Arc::clone(&inner),
                TableId(1),
                Conjunction::always_true(),
                Some(Rc::clone(&scan_monitors)),
            )),
            1,
        );
        let mut mj = MergeJoin::new(
            Box::new(left),
            Box::new(right),
            0,
            1,
            Some(BitVectorConfig {
                slot: Rc::clone(&slot),
                numbits: 2048,
                seed: 3,
                pushdown: false,
            }),
        );
        let mut ctx = ExecContext::new(8192);
        let n = run_count(&mut mj, &mut ctx).expect("plan drains without error");
        assert_eq!(n, 100);
        // NOTE: with Sort on the probe side the scan runs during the
        // right Sort's materialization, i.e. after MergeJoin::open_left
        // has installed the filter only if open order is left-first.
        // MergeJoin opens left on first next(), and Sort(right) only
        // materializes when first pulled — which happens after. The
        // monitor therefore saw a complete filter:
        let mut rep = FeedbackReport::new();
        scan_monitors.borrow_mut().harvest("inner", &mut rep);
        assert!(rep.measurements[0].actual > 0.0);
    }

    #[test]
    fn streaming_merge_join_matches_materializing_merge() {
        let (outer, inner, _, _) = setup(500);
        // Both inputs sorted on the join key via clustered order:
        // outer(k) is clustered on k; inner must be sorted on k too, so
        // sort it explicitly for this unit test.
        let left = outer_scan(&outer, 200);
        let right = Sort::new(
            Box::new(SeqScan::full(
                Arc::clone(&inner),
                TableId(1),
                Conjunction::always_true(),
                None,
            )),
            1,
        );
        let mut smj = StreamingMergeJoin::new(Box::new(left), Box::new(right), 0, 1, None);
        let mut ctx = ExecContext::new(8192);
        let mut got: Vec<i64> = drain(&mut smj, &mut ctx)
            .expect("test value is well-formed")
            .iter()
            .map(|r| r.get(0).as_int().expect("int column"))
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_merge_join_duplicates() {
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Datum::Int(1)]),
            Row::new(vec![Datum::Int(1)]),
            Row::new(vec![Datum::Int(2)]),
            Row::new(vec![Datum::Int(3)]),
        ];
        let t = Arc::new(
            TableStorage::bulk_load(schema, &rows, Some(0), 512, 1.0)
                .expect("bulk load test table"),
        );
        let mk = || SeqScan::full(Arc::clone(&t), TableId(0), Conjunction::always_true(), None);
        let mut smj = StreamingMergeJoin::new(Box::new(mk()), Box::new(mk()), 0, 0, None);
        let mut ctx = ExecContext::new(256);
        // 1⋈1: 2×2, 2⋈2: 1, 3⋈3: 1 ⇒ 6 rows.
        assert_eq!(
            run_count(&mut smj, &mut ctx).expect("plan drains without error"),
            6
        );
    }

    #[test]
    fn partial_bitvector_with_deferred_scan_measures_join_dpc() {
        let (outer, inner, _, _) = setup(2_000);
        // Sort the inner physically on k for the no-sorts case: rebuild
        // it clustered on column 1.
        let mut rows: Vec<Row> = (0..inner.page_count())
            .flat_map(|p| {
                inner
                    .rows_on_page(pf_common::PageId(p))
                    .expect("page id within table")
            })
            .collect();
        rows.sort_by_key(|r| r.get(1).as_int().expect("int column"));
        let inner_sorted = Arc::new(
            TableStorage::bulk_load(inner.schema().clone(), &rows, Some(1), 1024, 1.0)
                .expect("bulk load test table"),
        );

        let slot = semi_join_slot(1);
        let monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
            vec![ScanExprMonitor::semi_join("jp", Rc::clone(&slot), None)],
            1.0,
            4,
        )));
        let left = outer_scan(&outer, 400);
        let right = SeqScan::full(
            Arc::clone(&inner_sorted),
            TableId(1),
            Conjunction::always_true(),
            Some(Rc::clone(&monitors)),
        )
        .with_deferred_monitoring();
        let mut smj = StreamingMergeJoin::new(
            Box::new(left),
            Box::new(right),
            0,
            1,
            Some(BitVectorConfig {
                slot: Rc::clone(&slot),
                numbits: 1 << 20,
                seed: 8,
                pushdown: false,
            }),
        );
        let mut ctx = ExecContext::new(8192);
        assert_eq!(
            run_count(&mut smj, &mut ctx).expect("plan drains without error"),
            400
        );

        // Inner is clustered on k, so the 400 matching rows sit on a
        // small contiguous page run — the partial filter must find it.
        let mut truth = std::collections::HashSet::new();
        for p in 0..inner_sorted.page_count() {
            for r in inner_sorted
                .rows_on_page(pf_common::PageId(p))
                .expect("page id within table")
            {
                if r.get(1).as_int().expect("int column") < 400 {
                    truth.insert(p);
                }
            }
        }
        let mut rep = FeedbackReport::new();
        monitors.borrow_mut().harvest("inner", &mut rep);
        let est = rep.measurements[0].actual;
        let t = truth.len() as f64;
        assert!(
            (est - t).abs() <= t.mul_add(0.3, 3.0),
            "partial-filter estimate {est} vs truth {t}"
        );
    }

    #[test]
    fn hash_join_duplicate_keys_cross_product() {
        // Build side has duplicate keys: each probe match fans out.
        let schema = Schema::new(vec![Column::new("k", DataType::Int)]);
        let rows = vec![
            Row::new(vec![Datum::Int(1)]),
            Row::new(vec![Datum::Int(1)]),
            Row::new(vec![Datum::Int(2)]),
        ];
        let t = Arc::new(
            TableStorage::bulk_load(schema, &rows, Some(0), 512, 1.0)
                .expect("bulk load test table"),
        );
        let build = SeqScan::full(Arc::clone(&t), TableId(0), Conjunction::always_true(), None);
        let probe = SeqScan::full(Arc::clone(&t), TableId(0), Conjunction::always_true(), None);
        let mut hj = HashJoin::new(Box::new(build), Box::new(probe), 0, 0, None);
        let mut ctx = ExecContext::new(1024);
        // 1⋈1: 2×2 = 4, 2⋈2: 1 ⇒ 5 rows.
        assert_eq!(
            run_count(&mut hj, &mut ctx).expect("plan drains without error"),
            5
        );
    }
}
