//! Operator traits and drivers.

use crate::context::ExecContext;
use pf_common::{Result, Rid, Row, Schema};

/// A Volcano-style row operator.
pub trait Operator {
    /// The shape of rows this operator produces.
    fn schema(&self) -> &Schema;

    /// Produces the next row, or `None` at end of stream.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>>;

    /// Batched counting pull: the number of output rows in the next
    /// batch, or `None` at end of stream. Semantically identical to
    /// `next()` mapped to a count of 1 — page-batched operators
    /// override it to count qualifying rows without materializing
    /// them. Every I/O-statistics charge is identical on both pulls;
    /// only allocation work differs. A driver must pick one pull style
    /// per operator run (counting drivers never interleave the two).
    fn next_count(&mut self, ctx: &mut ExecContext) -> Result<Option<u64>> {
        Ok(self.next(ctx)?.map(|_| 1))
    }

    /// Downcast hook for page-batched consumers: a [`crate::SeqScan`]
    /// returns itself so parents (vectorized joins, sorts) can drive it
    /// a page at a time instead of row by row. Everything else is not
    /// page-addressable and returns `None`.
    fn as_seq_scan(&mut self) -> Option<&mut crate::scan::SeqScan> {
        None
    }
}

/// An SE-side producer of row identifiers (index seeks and RID
/// combinators) — the input of the Fetch operator.
pub trait RidSource {
    /// Produces the next RID, or `None` at end of stream.
    fn next_rid(&mut self, ctx: &mut ExecContext) -> Result<Option<Rid>>;
}

/// Drains an operator into a vector.
pub fn drain(op: &mut dyn Operator, ctx: &mut ExecContext) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next(ctx)? {
        out.push(row);
    }
    Ok(out)
}

/// Drains an operator counting rows (the `SELECT COUNT(...)` driver).
/// Uses the batched pull, so operators that can count a page at a time
/// never materialize their output.
pub fn run_count(op: &mut dyn Operator, ctx: &mut ExecContext) -> Result<u64> {
    let mut n = 0;
    while let Some(k) = op.next_count(ctx)? {
        n += k;
    }
    Ok(n)
}
