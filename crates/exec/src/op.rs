//! Operator traits and drivers.

use crate::context::ExecContext;
use pf_common::{Result, Rid, Row, Schema};

/// A Volcano-style row operator.
pub trait Operator {
    /// The shape of rows this operator produces.
    fn schema(&self) -> &Schema;

    /// Produces the next row, or `None` at end of stream.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>>;
}

/// An SE-side producer of row identifiers (index seeks and RID
/// combinators) — the input of the Fetch operator.
pub trait RidSource {
    /// Produces the next RID, or `None` at end of stream.
    fn next_rid(&mut self, ctx: &mut ExecContext) -> Result<Option<Rid>>;
}

/// Drains an operator into a vector.
pub fn drain(op: &mut dyn Operator, ctx: &mut ExecContext) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    while let Some(row) = op.next(ctx)? {
        out.push(row);
    }
    Ok(out)
}

/// Drains an operator counting rows (the `SELECT COUNT(...)` driver).
pub fn run_count(op: &mut dyn Operator, ctx: &mut ExecContext) -> Result<u64> {
    let mut n = 0;
    while op.next(ctx)?.is_some() {
        n += 1;
    }
    Ok(n)
}
