//! SE-side index plans: Index Seek, RID intersection, and Fetch.
//!
//! An index plan is `IndexSeek -> Fetch` (or
//! `IndexSeek ×2 -> Intersect -> Fetch`). The seek walks the
//! nonclustered B+-tree and yields RIDs in *key order* — the
//! page-interleaved access of Fig 2 (right) — so the Fetch operator
//! monitors its distinct page count with probabilistic counting (Fig 3),
//! one PID hash per fetched row.

use crate::context::ExecContext;
use crate::expr::{CompareOp, Conjunction};
use crate::monitor::{FetchMonitorHandle, FetchObserveWhen};
use crate::op::{Operator, RidSource};
use pf_common::{Datum, Result, Rid, Row, Schema, TableId};
use pf_feedback::BitVectorFilter;
use pf_storage::btree::BPlusTree;
use pf_storage::{AccessPattern, TableStorage};
use std::ops::Bound;
use std::sync::Arc;

/// Key bounds of an index seek, derived from one or two atoms on the
/// index key column.
#[derive(Debug, Clone)]
pub struct SeekRange {
    /// Lower key bound.
    pub lo: Bound<Datum>,
    /// Upper key bound.
    pub hi: Bound<Datum>,
}

impl SeekRange {
    /// An exact-match seek.
    pub fn eq(value: Datum) -> Self {
        SeekRange {
            lo: Bound::Included(value.clone()),
            hi: Bound::Included(value),
        }
    }

    /// Intersects two ranges (tightest bounds win).
    pub fn intersect(self, other: SeekRange) -> SeekRange {
        fn tighter_lo(a: Bound<Datum>, b: Bound<Datum>) -> Bound<Datum> {
            use std::cmp::Ordering::*;
            match (&a, &b) {
                (Bound::Unbounded, _) => b,
                (_, Bound::Unbounded) => a,
                (
                    Bound::Included(x) | Bound::Excluded(x),
                    Bound::Included(y) | Bound::Excluded(y),
                ) => match x.cmp_same_type(y).expect("seek bounds same-typed") {
                    Greater => a,
                    Less => b,
                    // Equal values: Excluded is tighter for a lower bound.
                    Equal => {
                        if matches!(a, Bound::Excluded(_)) {
                            a
                        } else {
                            b
                        }
                    }
                },
            }
        }
        fn tighter_hi(a: Bound<Datum>, b: Bound<Datum>) -> Bound<Datum> {
            use std::cmp::Ordering::*;
            match (&a, &b) {
                (Bound::Unbounded, _) => b,
                (_, Bound::Unbounded) => a,
                (
                    Bound::Included(x) | Bound::Excluded(x),
                    Bound::Included(y) | Bound::Excluded(y),
                ) => match x.cmp_same_type(y).expect("seek bounds same-typed") {
                    Less => a,
                    Greater => b,
                    Equal => {
                        if matches!(a, Bound::Excluded(_)) {
                            a
                        } else {
                            b
                        }
                    }
                },
            }
        }
        SeekRange {
            lo: tighter_lo(self.lo, other.lo),
            hi: tighter_hi(self.hi, other.hi),
        }
    }

    /// Derives the combined seek range of several atoms on one column.
    /// Returns `None` if any atom cannot seek (`Ne`) or the list is empty.
    pub fn from_atoms(atoms: &[(CompareOp, Datum)]) -> Option<Self> {
        let mut iter = atoms.iter();
        let (op, v) = iter.next()?;
        let mut range = Self::from_atom(*op, v.clone())?;
        for (op, v) in iter {
            range = range.intersect(Self::from_atom(*op, v.clone())?);
        }
        Some(range)
    }

    /// Derives the seek range for `column <op> value`. `Ne` cannot seek.
    pub fn from_atom(op: CompareOp, value: Datum) -> Option<Self> {
        let r = match op {
            CompareOp::Eq => Self::eq(value),
            CompareOp::Lt => SeekRange {
                lo: Bound::Unbounded,
                hi: Bound::Excluded(value),
            },
            CompareOp::Le => SeekRange {
                lo: Bound::Unbounded,
                hi: Bound::Included(value),
            },
            CompareOp::Gt => SeekRange {
                lo: Bound::Excluded(value),
                hi: Bound::Unbounded,
            },
            CompareOp::Ge => SeekRange {
                lo: Bound::Included(value),
                hi: Bound::Unbounded,
            },
            CompareOp::Ne => return None,
        };
        Some(r)
    }
}

/// An index seek: yields the RIDs whose key falls in the range, in key
/// order.
pub struct IndexSeek {
    tree: Arc<BPlusTree>,
    range: SeekRange,
    height: u32,
    /// Materialized on first pull (a snapshot of the leaf walk).
    rids: Option<Vec<Rid>>,
    pos: usize,
}

impl IndexSeek {
    /// A seek over `tree` (of the given height, for I/O charging).
    pub fn new(tree: Arc<BPlusTree>, height: u32, range: SeekRange) -> Self {
        IndexSeek {
            tree,
            range,
            height,
            rids: None,
            pos: 0,
        }
    }

    fn materialize(&mut self, ctx: &mut ExecContext) {
        let lo = match &self.range.lo {
            Bound::Included(d) => Bound::Included(d),
            Bound::Excluded(d) => Bound::Excluded(d),
            Bound::Unbounded => Bound::Unbounded,
        };
        let hi = match &self.range.hi {
            Bound::Included(d) => Bound::Included(d),
            Bound::Excluded(d) => Bound::Excluded(d),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut rids = Vec::new();
        for (_, posting) in self.tree.range(lo, hi) {
            rids.extend_from_slice(posting);
        }
        // Charge the root-to-leaf descent plus the leaf walk (~64
        // entries per leaf node).
        ctx.pool
            .charge_index_nodes(u64::from(self.height) + (rids.len() as u64).div_ceil(64));
        self.rids = Some(rids);
        self.pos = 0;
    }
}

impl RidSource for IndexSeek {
    fn next_rid(&mut self, ctx: &mut ExecContext) -> Result<Option<Rid>> {
        if self.rids.is_none() {
            self.materialize(ctx);
        }
        let rids = self.rids.as_ref().expect("materialized above");
        if self.pos < rids.len() {
            let r = rids[self.pos];
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

/// Index Intersection: RIDs present in *both* inputs, yielded in
/// `(page, slot)` order (engines sort the intersected RID set so the
/// subsequent Fetch sweeps forward).
pub struct IndexIntersection {
    left: Box<dyn RidSource>,
    right: Box<dyn RidSource>,
    merged: Option<Vec<Rid>>,
    pos: usize,
}

impl IndexIntersection {
    /// Intersects two RID sources.
    pub fn new(left: Box<dyn RidSource>, right: Box<dyn RidSource>) -> Self {
        IndexIntersection {
            left,
            right,
            merged: None,
            pos: 0,
        }
    }

    fn materialize(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let mut a = Vec::new();
        while let Some(r) = self.left.next_rid(ctx)? {
            a.push(r);
        }
        let mut b = Vec::new();
        while let Some(r) = self.right.next_rid(ctx)? {
            b.push(r);
        }
        // Hash-free sort-merge intersection; charge the comparisons as
        // generic cheap CPU ops.
        ctx.pool.charge_hashes((a.len() + b.len()) as u64);
        a.sort_unstable();
        b.sort_unstable();
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        self.merged = Some(out);
        Ok(())
    }
}

impl RidSource for IndexIntersection {
    fn next_rid(&mut self, ctx: &mut ExecContext) -> Result<Option<Rid>> {
        if self.merged.is_none() {
            self.materialize(ctx)?;
        }
        let rids = self.merged.as_ref().expect("materialized above");
        if self.pos < rids.len() {
            let r = rids[self.pos];
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

/// A pre-materialized RID run that charges nothing: the morsel
/// coordinator runs the seek side of a fetch plan once (paying index
/// I/O exactly as the serial plan would), then hands each fetch-morsel
/// worker its contiguous slice of the RID stream through this source.
pub struct RidList {
    rids: Vec<Rid>,
    pos: usize,
}

impl RidList {
    /// Wraps an already-charged RID run.
    pub fn new(rids: Vec<Rid>) -> Self {
        RidList { rids, pos: 0 }
    }
}

impl RidSource for RidList {
    fn next_rid(&mut self, _ctx: &mut ExecContext) -> Result<Option<Rid>> {
        if self.pos < self.rids.len() {
            let r = self.rids[self.pos];
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

/// A covering index-only scan: walks the index leaf level for a key
/// range and emits `(key)` rows — one per index entry — without ever
/// touching the base table.
///
/// Fidelity note (Section II-B): because base-table PIDs never
/// materialize in this operator, **no distinct page count can be
/// monitored from it** — the same limitation the paper notes for plans
/// that never expose the pages an alternative plan would touch.
pub struct IndexOnlyScan {
    tree: Arc<BPlusTree>,
    height: u32,
    range: SeekRange,
    schema: Schema,
    rows: Option<Vec<Row>>,
    pos: usize,
}

impl IndexOnlyScan {
    /// Builds an index-only scan; `key_column_name` names the single
    /// output column.
    pub fn new(
        tree: Arc<BPlusTree>,
        height: u32,
        range: SeekRange,
        key_column_name: &str,
        key_type: pf_common::DataType,
    ) -> Self {
        IndexOnlyScan {
            tree,
            height,
            range,
            schema: Schema::new(vec![pf_common::Column::new(key_column_name, key_type)]),
            rows: None,
            pos: 0,
        }
    }

    fn materialize(&mut self, ctx: &mut ExecContext) {
        let lo = match &self.range.lo {
            Bound::Included(d) => Bound::Included(d),
            Bound::Excluded(d) => Bound::Excluded(d),
            Bound::Unbounded => Bound::Unbounded,
        };
        let hi = match &self.range.hi {
            Bound::Included(d) => Bound::Included(d),
            Bound::Excluded(d) => Bound::Excluded(d),
            Bound::Unbounded => Bound::Unbounded,
        };
        let mut rows = Vec::new();
        for (key, posting) in self.tree.range(lo, hi) {
            for _ in 0..posting.len() {
                rows.push(Row::new(vec![key.clone()]));
            }
        }
        ctx.pool
            .charge_index_nodes(u64::from(self.height) + (rows.len() as u64).div_ceil(64));
        ctx.pool.charge_rows(rows.len() as u64);
        self.rows = Some(rows);
    }
}

impl Operator for IndexOnlyScan {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if self.rows.is_none() {
            self.materialize(ctx);
        }
        let rows = self.rows.as_ref().expect("materialized above");
        if self.pos < rows.len() {
            let r = rows[self.pos].clone();
            self.pos += 1;
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

/// The Fetch operator: turns RIDs into base-table rows with one random
/// page access each (deduped by the buffer pool), evaluates the residual
/// predicate, and drives the attached [`crate::monitor::FetchMonitor`]s.
pub struct Fetch {
    source: Box<dyn RidSource>,
    storage: Arc<TableStorage>,
    table_id: TableId,
    /// Conjuncts not implied by the seek, evaluated after the fetch.
    residual: Conjunction,
    monitors: Option<FetchMonitorHandle>,
    /// Pages discovered corrupt during this fetch stream: later RIDs on
    /// the same page are skipped without re-verifying (or re-counting).
    corrupt_pages: std::collections::HashSet<u32>,
    /// Pending same-page run of `AllFetched` observations on the batched
    /// path: `(page, rows)`, flushed when the stream moves to another
    /// page or ends. Fetch streams are clustered (index order groups
    /// RIDs by page), so one [`LinearCounter::observe_page`] call
    /// replaces a run of per-row observes bit-identically.
    pending_obs: Option<(u32, u64)>,
    /// Whether observations may be batched per page run — resolved on
    /// first fetch. Any governor *deadline* forces the row-at-a-time
    /// cadence: each fetched row is a deadline checkpoint, and shed
    /// timing must be reproducible.
    batch_obs: Option<bool>,
    /// Semi-join pre-filter `(filter, key column)`: residual-passing
    /// rows whose key misses the filter are dropped before delivery,
    /// charging one hash per tested row (see [`Fetch::with_prefilter`]).
    prefilter: Option<(BitVectorFilter, usize)>,
}

impl Fetch {
    /// Builds a Fetch.
    pub fn new(
        source: Box<dyn RidSource>,
        storage: Arc<TableStorage>,
        table_id: TableId,
        residual: Conjunction,
        monitors: Option<FetchMonitorHandle>,
    ) -> Self {
        Fetch {
            source,
            storage,
            table_id,
            residual,
            monitors,
            corrupt_pages: std::collections::HashSet::new(),
            pending_obs: None,
            batch_obs: None,
            prefilter: None,
        }
    }

    /// Attaches a completed semi-join filter as a delivery pre-filter on
    /// `key_col`: a residual-passing row is tested (one hash charged)
    /// and dropped when its key cannot be in the filter's build side.
    /// Because the filter has no false negatives, dropped rows are
    /// exactly rows a downstream hash probe would reject — the fetch
    /// analogue of the scan-side pushdown. Monitor observations are
    /// unchanged (they happen before the test, at fetch granularity).
    pub fn with_prefilter(mut self, filter: BitVectorFilter, key_col: usize) -> Self {
        self.prefilter = Some((filter, key_col));
        self
    }

    /// Flushes a pending `(page, rows)` run into every live `AllFetched`
    /// monitor, charging the hash ops the per-row path would have.
    fn flush_pending(ms: &FetchMonitorHandle, ctx: &mut ExecContext, page: u32, rows: u64) {
        for m in ms.borrow_mut().iter_mut() {
            if !m.shed && m.when == FetchObserveWhen::AllFetched {
                m.counter.observe_page(page, rows);
                ctx.pool.charge_hashes(rows);
            }
        }
    }
}

impl Operator for Fetch {
    fn schema(&self) -> &Schema {
        self.storage.schema()
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        while let Some(rid) = self.source.next_rid(ctx)? {
            // Cancellation/deadline checkpoint before each fetched RID:
            // an aborted fetch never touches the page or its monitors.
            ctx.check_interrupt()?;
            if self.corrupt_pages.contains(&rid.page.0) {
                continue;
            }
            let hit = ctx
                .pool
                .access(self.table_id, rid.page, AccessPattern::Random);
            // Zero-copy: seek straight to the slot and evaluate the
            // residual on the borrowed view; rows rejected here are
            // never decoded into owned values. A miss verifies the
            // page checksum; a corrupt page is skipped and recorded
            // (its rows are lost to this query), never surfaced.
            let view = match self.storage.checked_row_view(rid, ctx.fault_attempt, !hit) {
                Ok(v) => v,
                Err(pf_common::Error::ChecksumMismatch { .. }) => {
                    ctx.pool.skip_corrupt(self.table_id, rid.page);
                    self.corrupt_pages.insert(rid.page.0);
                    if let Some(ms) = &self.monitors {
                        for m in ms.borrow_mut().iter_mut() {
                            m.note_skipped_page();
                        }
                    }
                    continue;
                }
                Err(e) => return Err(e),
            };
            ctx.pool.charge_rows(1);

            if let Some(ms) = &self.monitors {
                let batch = *self
                    .batch_obs
                    .get_or_insert_with(|| ms.borrow().iter().all(|m| !m.has_deadline()));
                if batch {
                    // No deadline anywhere: per-row checkpoints are
                    // no-ops, so same-page runs coalesce into one
                    // bulk observation per page, flushed on page change.
                    match &mut self.pending_obs {
                        Some((p, n)) if *p == rid.page.0 => *n += 1,
                        pending => {
                            if let Some((page, rows)) = pending.replace((rid.page.0, 1)) {
                                Self::flush_pending(ms, ctx, page, rows);
                            }
                        }
                    }
                } else {
                    // Each fetched row is a deadline checkpoint: the
                    // clock is simulated, so shedding is deterministic.
                    let elapsed = ctx.elapsed_ms();
                    for m in ms.borrow_mut().iter_mut() {
                        m.check_deadline(elapsed);
                        if !m.shed && m.when == FetchObserveWhen::AllFetched {
                            m.counter.observe(rid.page.0);
                            ctx.pool.charge_hashes(1);
                        }
                    }
                }
            }

            let (pass, evaluated) = self.residual.eval_short_circuit(&view);
            ctx.pool.charge_pred_evals(evaluated as u64);
            if pass {
                if let Some((filter, key_col)) = &self.prefilter {
                    ctx.pool.charge_hashes(1);
                    if !filter.may_contain_ref(view.get(*key_col)) {
                        continue;
                    }
                }
                if let Some(ms) = &self.monitors {
                    for m in ms.borrow_mut().iter_mut() {
                        if !m.shed && m.when == FetchObserveWhen::PassedResidual {
                            m.counter.observe(rid.page.0);
                            ctx.pool.charge_hashes(1);
                        }
                    }
                }
                return Ok(Some(view.materialize()));
            }
        }
        // End of the RID stream: flush the trailing page run (taking it
        // keeps repeated end-of-stream calls idempotent).
        if let Some((page, rows)) = self.pending_obs.take() {
            if let Some(ms) = &self.monitors {
                Self::flush_pending(ms, ctx, page, rows);
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AtomicPredicate;
    use crate::monitor::FetchMonitor;
    use crate::op::{drain, run_count};
    use pf_common::{Column, DataType, PageId};
    use pf_feedback::FeedbackReport;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Table of n rows clustered on id, with `perm` a scrambled copy.
    fn setup(n: i64) -> (Arc<TableStorage>, Arc<BPlusTree>, u32) {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("perm", DataType::Int),
            Column::new("pad", DataType::Str),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Datum::Int(i),
                    Datum::Int((i * 7919) % n),
                    Datum::Str("x".repeat(40)),
                ])
            })
            .collect();
        let storage = Arc::new(
            TableStorage::bulk_load(schema, &rows, Some(0), 1024, 1.0)
                .expect("bulk load test table"),
        );
        let mut tree = BPlusTree::new();
        for rid in storage.all_rids() {
            let row = storage.read_row(rid).expect("rid points at a loaded row");
            tree.insert(row.get(1).clone(), rid);
        }
        let h = tree.height();
        (storage, Arc::new(tree), h)
    }

    #[test]
    fn seek_fetch_returns_exact_matches() {
        let (storage, tree, h) = setup(500);
        let seek = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(50)).expect("seekable comparison"),
        );
        let mut fetch = Fetch::new(
            Box::new(seek),
            Arc::clone(&storage),
            TableId(0),
            Conjunction::always_true(),
            None,
        );
        let mut ctx = ExecContext::new(4096);
        let rows = drain(&mut fetch, &mut ctx).expect("plan drains without error");
        assert_eq!(rows.len(), 50);
        assert!(rows
            .iter()
            .all(|r| r.get(1).as_int().expect("int column") < 50));
        assert!(ctx.stats().index_node_reads > 0);
        assert!(ctx.stats().rand_physical_reads > 0);
    }

    #[test]
    fn fetch_physical_io_equals_distinct_pages() {
        let (storage, tree, h) = setup(500);
        let seek = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(100)).expect("seekable comparison"),
        );
        let mut fetch = Fetch::new(
            Box::new(seek),
            Arc::clone(&storage),
            TableId(0),
            Conjunction::always_true(),
            None,
        );
        let mut ctx = ExecContext::new(8192);
        run_count(&mut fetch, &mut ctx).expect("plan drains without error");

        // Ground truth DPC.
        let mut touched = std::collections::HashSet::new();
        for p in 0..storage.page_count() {
            for r in storage
                .rows_on_page(PageId(p))
                .expect("page id within table")
            {
                if r.get(1).as_int().expect("int column") < 100 {
                    touched.insert(p);
                }
            }
        }
        assert_eq!(ctx.stats().rand_physical_reads, touched.len() as u64);
    }

    #[test]
    fn prefilter_drops_rows_absent_from_build_side() {
        let (storage, tree, h) = setup(500);
        // Filter over even keys only; large enough that odd keys in
        // 0..100 never collide into false positives for this check.
        let mut filter = BitVectorFilter::new(1 << 16, 99);
        for k in (0..500i64).step_by(2) {
            filter.insert(&Datum::Int(k));
        }
        let seek = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(100)).expect("seekable comparison"),
        );
        let mut fetch = Fetch::new(
            Box::new(seek),
            Arc::clone(&storage),
            TableId(0),
            Conjunction::always_true(),
            None,
        )
        .with_prefilter(filter, 1);
        let mut ctx = ExecContext::new(8192);
        let rows = drain(&mut fetch, &mut ctx).expect("plan drains without error");
        assert_eq!(rows.len(), 50, "odd keys dropped before delivery");
        assert!(rows
            .iter()
            .all(|r| r.get(1).as_int().expect("int column") % 2 == 0));
        // One hash per residual-passing row tested.
        assert_eq!(ctx.stats().hash_ops, 100);
    }

    #[test]
    fn fetch_monitor_estimates_dpc() {
        let (storage, tree, h) = setup(2_000);
        let seek = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(400)).expect("seekable comparison"),
        );
        let monitors = Rc::new(RefCell::new(vec![FetchMonitor::new(
            "perm<400",
            FetchObserveWhen::AllFetched,
            storage.page_count(),
            None,
            9,
        )]));
        let mut fetch = Fetch::new(
            Box::new(seek),
            Arc::clone(&storage),
            TableId(0),
            Conjunction::always_true(),
            Some(Rc::clone(&monitors)),
        );
        let mut ctx = ExecContext::new(16_384);
        run_count(&mut fetch, &mut ctx).expect("plan drains without error");
        let truth = ctx.stats().rand_physical_reads as f64;
        let mut rep = FeedbackReport::new();
        monitors.borrow()[0].harvest("t", &mut rep);
        let est = rep.measurements[0].actual;
        let err = (est - truth).abs() / truth;
        assert!(err < 0.10, "estimate {est}, truth {truth}");
    }

    #[test]
    fn residual_predicate_filters_and_both_monitors_differ() {
        let (storage, tree, h) = setup(1_000);
        let seek = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(500)).expect("seekable comparison"),
        );
        let residual = Conjunction::new(vec![AtomicPredicate::new(
            storage.schema(),
            "id",
            CompareOp::Lt,
            Datum::Int(100),
        )
        .expect("test value is well-formed")]);
        let monitors = Rc::new(RefCell::new(vec![
            FetchMonitor::new(
                "perm<500",
                FetchObserveWhen::AllFetched,
                storage.page_count(),
                None,
                1,
            ),
            FetchMonitor::new(
                "perm<500 AND id<100",
                FetchObserveWhen::PassedResidual,
                storage.page_count(),
                None,
                2,
            ),
        ]));
        let mut fetch = Fetch::new(
            Box::new(seek),
            Arc::clone(&storage),
            TableId(0),
            residual,
            Some(Rc::clone(&monitors)),
        );
        let mut ctx = ExecContext::new(16_384);
        let n = run_count(&mut fetch, &mut ctx).expect("plan drains without error");
        assert!(n < 500, "residual filtered ({n})");
        let ms = monitors.borrow();
        assert!(ms[0].counter.estimate() > ms[1].counter.estimate());
    }

    #[test]
    fn intersection_matches_set_intersection() {
        let (storage, tree, h) = setup(500);
        // perm < 100 ∩ perm >= 50  (same index both sides — contrived but
        // exercises the merge).
        let a = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(100)).expect("seekable comparison"),
        );
        let b = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Ge, Datum::Int(50)).expect("seekable comparison"),
        );
        let inter = IndexIntersection::new(Box::new(a), Box::new(b));
        let mut fetch = Fetch::new(
            Box::new(inter),
            Arc::clone(&storage),
            TableId(0),
            Conjunction::always_true(),
            None,
        );
        let mut ctx = ExecContext::new(8192);
        let rows = drain(&mut fetch, &mut ctx).expect("plan drains without error");
        assert_eq!(rows.len(), 50);
        assert!(rows
            .iter()
            .all(|r| (50..100).contains(&r.get(1).as_int().expect("int column"))));
    }

    #[test]
    fn seek_range_derivation() {
        assert!(SeekRange::from_atom(CompareOp::Ne, Datum::Int(1)).is_none());
        let r = SeekRange::eq(Datum::Int(7));
        assert!(matches!(r.lo, Bound::Included(Datum::Int(7))));
        assert!(matches!(r.hi, Bound::Included(Datum::Int(7))));
    }

    #[test]
    fn empty_seek_range_yields_nothing() {
        let (storage, tree, h) = setup(100);
        let seek = IndexSeek::new(
            Arc::clone(&tree),
            h,
            SeekRange::from_atom(CompareOp::Lt, Datum::Int(0)).expect("seekable comparison"),
        );
        let mut fetch = Fetch::new(
            Box::new(seek),
            Arc::clone(&storage),
            TableId(0),
            Conjunction::always_true(),
            None,
        );
        let mut ctx = ExecContext::new(1024);
        assert_eq!(
            run_count(&mut fetch, &mut ctx).expect("plan drains without error"),
            0
        );
        assert_eq!(ctx.stats().rand_physical_reads, 0);
    }
}
