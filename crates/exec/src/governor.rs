//! Monitor resource governance: memory budgets and deadlines.
//!
//! The paper's monitors are "low overhead" by construction, but a
//! production engine still bounds them: a monitored run must not hold
//! unbounded sketch memory, and monitoring must not extend a query past
//! an operator deadline. [`MonitorGovernor`] enforces both:
//!
//! * **memory** — every monitor's sketch bytes (via
//!   [`pf_feedback::Sketch::approx_bytes`]) are charged against the
//!   budget *at attach time*, in descending [`ShedClass`] priority;
//!   monitors that do not fit are shed before the run starts;
//! * **deadline** — operators call back at page boundaries with the
//!   simulated clock's elapsed milliseconds; once the deadline passes,
//!   every still-attached monitor is shed mid-run.
//!
//! Shed monitors stay in the plan and still harvest, but their
//! measurements carry `budget_shed = true` — partial counts that the
//! feedback loop must never absorb. Both triggers are driven purely by
//! deterministic inputs (configured sketch sizes, the simulated clock),
//! so shedding decisions are identical across repeated runs and worker
//! counts.

use std::cell::RefCell;
use std::rc::Rc;

/// Shedding priority of a monitor, cheapest-to-lose first.
///
/// Ordering is the *shed* order: `PageSampled` monitors go first (their
/// estimates are already approximate and they force short-circuiting
/// off), then semi-join bit-vector tests (per-row hashing), then fetch
/// linear counters, and exact prefix counters last (they are nearly
/// free and exact — shedding them loses the most information per byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedClass {
    /// Non-prefix atom expressions counted via page sampling.
    PageSampled = 0,
    /// Derived semi-join predicate tests (Fig 5).
    SemiJoin = 1,
    /// Linear-counting fetch monitors (Fig 3).
    LinearCounting = 2,
    /// Exact prefix counters on scans (Section III-B).
    Exact = 3,
}

/// Per-run resource governor shared by all monitors of one query.
#[derive(Debug)]
pub struct MonitorGovernor {
    memory_budget: Option<usize>,
    deadline_ms: Option<f64>,
    charged_bytes: usize,
    shed_monitors: u64,
    deadline_fired: bool,
}

impl MonitorGovernor {
    /// A governor with the given byte budget and/or deadline; `None`
    /// disables that trigger.
    pub fn new(memory_budget: Option<usize>, deadline_ms: Option<f64>) -> Self {
        MonitorGovernor {
            memory_budget,
            deadline_ms,
            charged_bytes: 0,
            shed_monitors: 0,
            deadline_fired: false,
        }
    }

    /// Tries to charge `bytes` against the memory budget. Returns `true`
    /// (and records the charge) when it fits; `false` when admitting the
    /// monitor would exceed the budget — the caller must shed it.
    pub fn try_charge(&mut self, bytes: usize) -> bool {
        match self.memory_budget {
            Some(budget) if self.charged_bytes.saturating_add(bytes) > budget => false,
            _ => {
                self.charged_bytes = self.charged_bytes.saturating_add(bytes);
                true
            }
        }
    }

    /// Records `n` monitors shed (at admission or mid-run).
    pub fn note_shed(&mut self, n: u64) {
        self.shed_monitors += n;
    }

    /// Whether the run's deadline has passed at `elapsed_ms` on the
    /// simulated clock. Latches: once fired it stays fired, so late
    /// callers see a consistent answer.
    pub fn deadline_exceeded(&mut self, elapsed_ms: f64) -> bool {
        if self.deadline_fired {
            return true;
        }
        if let Some(deadline) = self.deadline_ms {
            if elapsed_ms > deadline {
                self.deadline_fired = true;
            }
        }
        self.deadline_fired
    }

    /// Bytes admitted so far.
    pub fn charged_bytes(&self) -> usize {
        self.charged_bytes
    }

    /// Monitors shed so far.
    pub fn shed_monitors(&self) -> u64 {
        self.shed_monitors
    }

    /// Whether the deadline trigger has fired.
    pub fn deadline_fired(&self) -> bool {
        self.deadline_fired
    }

    /// The configured memory budget, if any.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// The configured deadline, if any.
    pub fn deadline_ms(&self) -> Option<f64> {
        self.deadline_ms
    }
}

/// Shared handle to a run's governor.
pub type GovernorHandle = Rc<RefCell<MonitorGovernor>>;

/// Wraps a governor in a shareable handle.
pub fn governor_handle(memory_budget: Option<usize>, deadline_ms: Option<f64>) -> GovernorHandle {
    Rc::new(RefCell::new(MonitorGovernor::new(
        memory_budget,
        deadline_ms,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shed_class_order_is_cheapest_first() {
        assert!(ShedClass::PageSampled < ShedClass::SemiJoin);
        assert!(ShedClass::SemiJoin < ShedClass::LinearCounting);
        assert!(ShedClass::LinearCounting < ShedClass::Exact);
    }

    #[test]
    fn charges_until_budget_then_refuses() {
        let mut g = MonitorGovernor::new(Some(100), None);
        assert!(g.try_charge(60));
        assert!(g.try_charge(40));
        assert!(!g.try_charge(1), "101st byte must be refused");
        assert_eq!(g.charged_bytes(), 100);
        // A smaller later charge can still fit a fragmented budget.
        let mut g = MonitorGovernor::new(Some(100), None);
        assert!(g.try_charge(90));
        assert!(!g.try_charge(20));
        assert!(g.try_charge(10));
    }

    #[test]
    fn unlimited_budget_always_charges() {
        let mut g = MonitorGovernor::new(None, None);
        assert!(g.try_charge(usize::MAX));
        assert!(g.try_charge(usize::MAX), "saturating, never overflows");
    }

    #[test]
    fn deadline_latches() {
        let mut g = MonitorGovernor::new(None, Some(10.0));
        assert!(!g.deadline_exceeded(9.9));
        assert!(!g.deadline_fired());
        assert!(g.deadline_exceeded(10.1));
        assert!(g.deadline_fired());
        // Latched: an earlier timestamp from another operator still sees
        // the deadline as fired.
        assert!(g.deadline_exceeded(0.0));
    }

    #[test]
    fn no_deadline_never_fires() {
        let mut g = MonitorGovernor::new(Some(64), None);
        assert!(!g.deadline_exceeded(f64::MAX));
    }
}
