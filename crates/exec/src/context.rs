//! Execution context: buffer pool + disk model.

use pf_storage::{BufferPool, DiskModel, IoStats};

/// Everything an operator needs at `next()` time.
///
/// Single-threaded by design (one query at a time, like the paper's
/// per-query experiments); operators receive `&mut ExecContext` so the
/// accounting is free of interior mutability.
#[derive(Debug)]
pub struct ExecContext {
    /// The buffer pool (owns the [`IoStats`] counters).
    pub pool: BufferPool,
    /// The simulated clock.
    pub model: DiskModel,
    /// Which retry of the current query this execution is (0 = first
    /// try). [`pf_storage::TableStorage`] clears transient read-stall
    /// faults once the attempt reaches the site's stall budget, so a
    /// runner that retries with an incremented attempt always makes
    /// progress.
    pub fault_attempt: u32,
}

impl ExecContext {
    /// A context with the given pool capacity and the default disk model.
    pub fn new(pool_pages: usize) -> Self {
        ExecContext {
            pool: BufferPool::new(pool_pages),
            model: DiskModel::default(),
            fault_attempt: 0,
        }
    }

    /// A context with a custom disk model.
    pub fn with_model(pool_pages: usize, model: DiskModel) -> Self {
        ExecContext {
            pool: BufferPool::new(pool_pages),
            model,
            fault_attempt: 0,
        }
    }

    /// Simulated elapsed time of everything charged so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.model.elapsed_ms(&self.pool.stats())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Cold cache: evict everything, reset counters (the paper's
    /// measurement methodology).
    pub fn cold_start(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_common::{PageId, TableId};
    use pf_storage::AccessPattern;

    #[test]
    fn elapsed_tracks_charges() {
        let mut ctx = ExecContext::new(16);
        assert_eq!(ctx.elapsed_ms(), 0.0);
        ctx.pool
            .access(TableId(0), PageId(0), AccessPattern::Random);
        assert!(ctx.elapsed_ms() >= ctx.model.rand_read_ms);
    }

    #[test]
    fn cold_start_resets() {
        let mut ctx = ExecContext::new(16);
        ctx.pool
            .access(TableId(0), PageId(0), AccessPattern::Random);
        ctx.cold_start();
        assert_eq!(ctx.elapsed_ms(), 0.0);
        assert_eq!(ctx.pool.resident_pages(), 0);
    }
}
