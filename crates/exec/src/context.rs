//! Execution context: buffer pool + disk model + cancellation.

use pf_common::{Error, Result};
use pf_storage::{BufferPool, DiskModel, IoStats};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;

/// A shared, cloneable cooperative-cancellation handle.
///
/// Operators poll the token at page/morsel boundaries via
/// [`ExecContext::check_interrupt`]; once tripped, the query unwinds
/// with [`Error::Cancelled`] without absorbing any feedback. Besides
/// the usual externally-tripped flag ([`CancelToken::cancel`]), a token
/// can be armed to trip *at the n-th checkpoint*
/// ([`CancelToken::cancel_after`]) — a deterministic way to abort a
/// query at any chosen page boundary, which is exactly what the
/// cancellation-hygiene tests sweep over.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Remaining checkpoints before the token trips itself; negative
    /// means "never self-trip" (the default).
    budget: AtomicI64,
}

impl Default for TokenInner {
    fn default() -> Self {
        TokenInner {
            cancelled: AtomicBool::new(false),
            budget: AtomicI64::new(i64::MIN / 2),
        }
    }
}

impl CancelToken {
    /// A fresh token that only trips when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that trips at the `n`-th checkpoint (0 = the very first
    /// [`ExecContext::check_interrupt`] call aborts).
    pub fn cancel_after(n: u64) -> Self {
        let t = CancelToken::new();
        t.inner
            .budget
            .store(i64::try_from(n).unwrap_or(i64::MAX), Ordering::SeqCst);
        t
    }

    /// Trip the token: every context holding a clone aborts at its next
    /// checkpoint.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Record one checkpoint; returns `true` when the token is (now)
    /// tripped. Self-trips when a `cancel_after` budget reaches zero.
    pub fn checkpoint(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        // A `cancel_after` budget counts down to exactly zero; the
        // deeply negative default never reaches it, so ordinary tokens
        // only trip via `cancel()`.
        if self.inner.budget.fetch_sub(1, Ordering::SeqCst) == 0 {
            self.inner.cancelled.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }
}

/// Everything an operator needs at `next()` time.
///
/// Single-threaded by design (one query at a time, like the paper's
/// per-query experiments); operators receive `&mut ExecContext` so the
/// accounting is free of interior mutability.
#[derive(Debug)]
pub struct ExecContext {
    /// The buffer pool (owns the [`IoStats`] counters).
    pub pool: BufferPool,
    /// The simulated clock.
    pub model: DiskModel,
    /// Which retry of the current query this execution is (0 = first
    /// try). [`pf_storage::TableStorage`] clears transient read-stall
    /// faults once the attempt reaches the site's stall budget, so a
    /// runner that retries with an incremented attempt always makes
    /// progress.
    pub fault_attempt: u32,
    /// Cooperative cancellation handle, polled at page granularity.
    pub cancel: CancelToken,
    /// Simulated-clock deadline: when `elapsed_ms()` passes this the
    /// next checkpoint aborts with [`Error::DeadlineExceeded`]. Driven
    /// by the *simulated* clock, so the abort point is deterministic
    /// across machines and worker counts.
    pub deadline_ms: Option<u64>,
}

impl ExecContext {
    /// A context with the given pool capacity and the default disk model.
    pub fn new(pool_pages: usize) -> Self {
        ExecContext {
            pool: BufferPool::new(pool_pages),
            model: DiskModel::default(),
            fault_attempt: 0,
            cancel: CancelToken::new(),
            deadline_ms: None,
        }
    }

    /// A context with a custom disk model.
    pub fn with_model(pool_pages: usize, model: DiskModel) -> Self {
        ExecContext {
            pool: BufferPool::new(pool_pages),
            model,
            fault_attempt: 0,
            cancel: CancelToken::new(),
            deadline_ms: None,
        }
    }

    /// Simulated elapsed time of everything charged so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.model.elapsed_ms(&self.pool.stats())
    }

    /// Cancellation/deadline checkpoint. Operators call this at page
    /// (and morsel) boundaries; an `Err` here must propagate untouched
    /// so the abort reaches the runner before any feedback is
    /// harvested. The deadline check reads the simulated clock, and the
    /// clock is monotone within a run, so a fired deadline stays fired.
    pub fn check_interrupt(&self) -> Result<()> {
        if self.cancel.checkpoint() {
            return Err(Error::Cancelled);
        }
        if let Some(deadline_ms) = self.deadline_ms {
            #[allow(clippy::cast_precision_loss)]
            if self.elapsed_ms() > deadline_ms as f64 {
                return Err(Error::DeadlineExceeded { deadline_ms });
            }
        }
        Ok(())
    }

    /// Drop any armed cancellation/deadline state (used when a pooled
    /// context is recycled for the next query).
    pub fn clear_interrupts(&mut self) {
        self.cancel = CancelToken::new();
        self.deadline_ms = None;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Cold cache: evict everything, reset counters (the paper's
    /// measurement methodology).
    pub fn cold_start(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_common::{PageId, TableId};
    use pf_storage::AccessPattern;

    #[test]
    fn elapsed_tracks_charges() {
        let mut ctx = ExecContext::new(16);
        assert_eq!(ctx.elapsed_ms(), 0.0);
        ctx.pool
            .access(TableId(0), PageId(0), AccessPattern::Random);
        assert!(ctx.elapsed_ms() >= ctx.model.rand_read_ms);
    }

    #[test]
    fn cold_start_resets() {
        let mut ctx = ExecContext::new(16);
        ctx.pool
            .access(TableId(0), PageId(0), AccessPattern::Random);
        ctx.cold_start();
        assert_eq!(ctx.elapsed_ms(), 0.0);
        assert_eq!(ctx.pool.resident_pages(), 0);
    }

    #[test]
    fn cancel_token_trips_every_clone() {
        let ctx = ExecContext::new(16);
        let handle = ctx.cancel.clone();
        assert!(ctx.check_interrupt().is_ok());
        handle.cancel();
        assert_eq!(ctx.check_interrupt(), Err(Error::Cancelled));
        // Once tripped, it stays tripped.
        assert_eq!(ctx.check_interrupt(), Err(Error::Cancelled));
    }

    #[test]
    fn cancel_after_counts_checkpoints() {
        let mut ctx = ExecContext::new(16);
        ctx.cancel = CancelToken::cancel_after(3);
        for _ in 0..3 {
            assert!(ctx.check_interrupt().is_ok());
        }
        assert_eq!(ctx.check_interrupt(), Err(Error::Cancelled));
    }

    #[test]
    fn deadline_fires_on_simulated_clock() {
        let mut ctx = ExecContext::new(16);
        ctx.deadline_ms = Some(0);
        assert!(ctx.check_interrupt().is_ok(), "no charges, no elapsed time");
        ctx.pool
            .access(TableId(0), PageId(0), AccessPattern::Random);
        assert_eq!(
            ctx.check_interrupt(),
            Err(Error::DeadlineExceeded { deadline_ms: 0 })
        );
        ctx.clear_interrupts();
        assert!(ctx.check_interrupt().is_ok());
    }
}
