//! # pf-exec — the relational-engine substrate
//!
//! A Volcano-style single-threaded executor with the architectural seam
//! the paper's mechanisms depend on: the split between the **storage
//! engine (SE)** — where page ids are visible and predicates are
//! evaluated inside scans — and the **relational engine (RE)** — joins
//! and aggregation, where PIDs are *not* available (Section II-B,
//! Example 2).
//!
//! * [`expr`] — atomic comparison predicates and conjunctions with
//!   *short-circuit* evaluation (the optimization Fig 4 works around),
//! * [`context`] — [`ExecContext`]: buffer pool + disk model threaded
//!   through every operator,
//! * [`monitor`] — monitor wiring: scan-side DPC monitors (exact /
//!   page-sampled / semi-join filtered) and fetch-side linear counters,
//! * [`governor`] — per-run monitor resource governance: memory budgets
//!   charged per sketch and deadlines that shed monitors mid-run,
//! * [`op`] — the `Operator` / `RidSource` traits and drivers,
//! * [`scan`] — SE-side sequential & clustered-range scans,
//! * [`index`] — SE-side index seek, RID intersection, and Fetch,
//! * [`join`] — RE-side Hash, Merge, and Index-Nested-Loops joins,
//! * [`sort`] / [`agg`] — RE-side sort and `COUNT` aggregation.
//!
//! Monitors are **caller-owned** (`Rc<RefCell<...>>` handles): the
//! planner constructs them, hands clones to the operators that drive
//! them, and harvests the measurements after the plan is drained —
//! mirroring how the prototype surfaces counters through the
//! `statistics xml` mode without touching the cached plan.

// Corruption tolerance: operators must surface typed errors, never
// panic, when page bytes fail verification.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod agg;
pub mod context;
pub mod expr;
pub mod governor;
pub mod index;
pub mod join;
pub mod join_table;
pub mod monitor;
pub mod op;
pub mod scan;
pub mod sort;

pub use context::{CancelToken, ExecContext};
pub use expr::{AtomicPredicate, CompareOp, Conjunction, PageKernel};
pub use governor::{governor_handle, GovernorHandle, MonitorGovernor, ShedClass};
pub use join_table::{join_partitions, RadixTable};
pub use monitor::{FetchMonitor, FetchObserveWhen, ScanExprMonitor, ScanMonitorSet, SemiJoinSlot};
pub use op::{drain, run_count, Operator, RidSource};
pub use scan::{PageRows, SeqScan};
