//! RE-side Sort: blocking materialization + in-memory sort.
//!
//! The key property the paper exploits (Section IV, Merge Join): the
//! first `next()` of a Sort is **blocking** — the child is fully consumed
//! before the first output row — so a bit vector built over the sorted
//! side is complete before the other side is scanned.

use crate::context::ExecContext;
use crate::op::Operator;
use pf_common::{Datum, Result, Row, Schema};

/// Sorts its input by one column (ascending, total order).
pub struct Sort {
    input: Box<dyn Operator>,
    key: usize,
    sorted: Option<std::vec::IntoIter<Row>>,
}

impl Sort {
    /// Builds a sort on column ordinal `key`.
    pub fn new(input: Box<dyn Operator>, key: usize) -> Self {
        Sort {
            input,
            key,
            sorted: None,
        }
    }

    fn materialize(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let key = self.key;
        // Decode each row's sort key once at collection (off the
        // borrowed page view when the input is a batch-capable scan)
        // instead of re-accessing it per comparison.
        let mut keyed: Vec<(Datum, Row)> = Vec::new();
        match self
            .input
            .as_seq_scan()
            .filter(|s| s.supports_page_visits())
        {
            Some(scan) => {
                let keyed = &mut keyed;
                while scan.next_page_rows(ctx, &mut |rows, _ctx| {
                    rows.for_each(|_slot, view| {
                        keyed.push((view.get(key).to_datum(), view.materialize()));
                        Ok(())
                    })
                })? {}
            }
            None => {
                while let Some(r) = self.input.next(ctx)? {
                    keyed.push((r.get(key).clone(), r));
                }
            }
        }
        let n = keyed.len() as u64;
        // Charge ~n·log2(n) comparisons as cheap CPU ops.
        if n > 1 {
            ctx.pool.charge_hashes(n * (64 - n.leading_zeros() as u64));
        }
        // Stable, so equal keys keep input order — the same permutation
        // the row-at-a-time collection produced.
        keyed.sort_by(|a, b| {
            a.0.cmp_same_type(&b.0)
                .expect("sort keys must be same-typed")
        });
        self.sorted = Some(
            keyed
                .into_iter()
                .map(|(_, r)| r)
                .collect::<Vec<_>>()
                .into_iter(),
        );
        Ok(())
    }
}

impl Operator for Sort {
    fn schema(&self) -> &Schema {
        self.input.schema()
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if self.sorted.is_none() {
            self.materialize(ctx)?;
        }
        Ok(self.sorted.as_mut().expect("materialized above").next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Conjunction;
    use crate::op::drain;
    use crate::scan::SeqScan;
    use pf_common::{Column, DataType, Datum, TableId};
    use pf_storage::TableStorage;
    use std::sync::Arc;

    #[test]
    fn sorts_by_key_column() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let rows: Vec<Row> = (0..100)
            .map(|i| Row::new(vec![Datum::Int(i), Datum::Int((i * 37) % 100)]))
            .collect();
        let t = Arc::new(TableStorage::bulk_load(schema, &rows, Some(0), 1024, 1.0).unwrap());
        let scan = SeqScan::full(Arc::clone(&t), TableId(0), Conjunction::always_true(), None);
        let mut sort = Sort::new(Box::new(scan), 1);
        let mut ctx = ExecContext::new(1024);
        let out = drain(&mut sort, &mut ctx).unwrap();
        let vals: Vec<i64> = out.iter().map(|r| r.get(1).as_int().unwrap()).collect();
        assert_eq!(vals, (0..100).collect::<Vec<_>>());
        assert!(ctx.stats().hash_ops > 0, "sort CPU charged");
    }

    #[test]
    fn empty_input() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let t = Arc::new(TableStorage::bulk_load(schema, &[], Some(0), 512, 1.0).unwrap());
        let scan = SeqScan::full(Arc::clone(&t), TableId(0), Conjunction::always_true(), None);
        let mut sort = Sort::new(Box::new(scan), 0);
        let mut ctx = ExecContext::new(16);
        assert!(drain(&mut sort, &mut ctx).unwrap().is_empty());
    }
}
