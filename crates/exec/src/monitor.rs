//! Monitor wiring between operators and the `pf-feedback` mechanisms.
//!
//! Monitors are created by the planner, shared with operators as
//! `Rc<RefCell<...>>` handles, and harvested after the plan drains. Three
//! shapes exist, matching Sections III–IV:
//!
//! * [`ScanMonitorSet`] — attached to a scan: one entry per monitored
//!   expression, each either *exact* (a prefix of the scan's conjuncts —
//!   free under short-circuiting) or *page-sampled* (non-prefix, needs
//!   short-circuiting off on sampled pages), optionally testing a
//!   semi-join bit-vector instead of/apart from atoms;
//! * [`FetchMonitor`] — attached to a Fetch/INL-inner: a linear counter
//!   over fetched PIDs;
//! * [`SemiJoinSlot`] — the callback cell a Hash/Merge Join fills with
//!   its build-side bit vector before the probe scan runs (Fig 5).

use crate::expr::Conjunction;
use crate::governor::{GovernorHandle, ShedClass};
use pf_common::DatumAccess;
pub use pf_feedback::page_sampled;
use pf_feedback::{
    BitVectorFilter, DpcMeasurement, FeedbackReport, GroupedPageCounter, LinearCounter, Mechanism,
    Sketch,
};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::rc::Rc;

/// The cell through which the RE-side join hands its bit-vector filter to
/// the SE-side probe scan. Starts empty; the join fills it after the
/// build phase, strictly before any probe row flows.
#[derive(Debug, Default)]
pub struct SemiJoinFilter {
    /// The filter, once built.
    pub filter: Option<BitVectorFilter>,
    /// Probe-side join-key column ordinal.
    pub key_column: usize,
}

/// Shared handle to a [`SemiJoinFilter`].
pub type SemiJoinSlot = Rc<RefCell<SemiJoinFilter>>;

/// Creates an empty semi-join slot for probe-side key column `key_column`.
pub fn semi_join_slot(key_column: usize) -> SemiJoinSlot {
    Rc::new(RefCell::new(SemiJoinFilter {
        filter: None,
        key_column,
    }))
}

/// How one monitored expression on a scan decides "row satisfies".
#[derive(Debug)]
enum ScanExprKind {
    /// Conjunction of the scan predicate's atoms at these indices.
    /// `prefix_len` is `Some(L)` when the indices are exactly `0..L` —
    /// then the truth is known from short-circuit evaluation for free.
    Atoms {
        indices: Vec<usize>,
        prefix_len: Option<usize>,
    },
    /// The derived semi-join predicate: bit-vector membership of the
    /// row's join key (Fig 5). Costs one hash per row on sampled pages.
    SemiJoin(SemiJoinSlot),
}

/// One monitored expression on a scan.
///
/// Page counting is delegated to a [`GroupedPageCounter`] (the scan-plan
/// grouped-access property of Section III-B): one flag per current page,
/// flushed at page boundaries. Keeping the counter as a real sketch —
/// rather than a bare `u64` — is what lets intra-query morsel workers
/// each count their disjoint page range and merge exactly via
/// [`GroupedPageCounter::merge`].
#[derive(Debug)]
pub struct ScanExprMonitor {
    /// Canonical expression text for the report.
    pub label: String,
    /// Optimizer estimate to print alongside (if known).
    pub estimated: Option<f64>,
    kind: ScanExprKind,
    satisfied_this_page: bool,
    counter: GroupedPageCounter,
    shed: bool,
}

impl ScanExprMonitor {
    /// Monitors the sub-conjunction of the scan predicate at `indices`
    /// (sorted, deduped). Prefix sub-conjunctions are counted exactly on
    /// every page; others only on sampled pages.
    pub fn atoms(predicate: &Conjunction, mut indices: Vec<usize>, estimated: Option<f64>) -> Self {
        indices.sort_unstable();
        indices.dedup();
        let prefix_len = if indices.iter().copied().eq(0..indices.len()) {
            Some(indices.len())
        } else {
            None
        };
        ScanExprMonitor {
            label: predicate.key_of(&indices),
            estimated,
            kind: ScanExprKind::Atoms {
                indices,
                prefix_len,
            },
            satisfied_this_page: false,
            counter: GroupedPageCounter::new(),
            shed: false,
        }
    }

    /// Monitors the derived semi-join predicate through `slot`.
    pub fn semi_join(label: impl Into<String>, slot: SemiJoinSlot, estimated: Option<f64>) -> Self {
        ScanExprMonitor {
            label: label.into(),
            estimated,
            kind: ScanExprKind::SemiJoin(slot),
            satisfied_this_page: false,
            counter: GroupedPageCounter::new(),
            shed: false,
        }
    }

    /// Whether this expression can be decided from short-circuit results
    /// alone (i.e. needs no full evaluation).
    fn is_prefix(&self) -> bool {
        matches!(
            self.kind,
            ScanExprKind::Atoms {
                prefix_len: Some(_),
                ..
            }
        )
    }

    fn needs_full_eval(&self) -> bool {
        matches!(
            self.kind,
            ScanExprKind::Atoms {
                prefix_len: None,
                ..
            }
        )
    }
}

/// How a scan communicates per-conjunct truth for one row, without
/// forcing the hot path to materialize an `Option<bool>` buffer.
#[derive(Clone, Copy)]
enum AtomResults<'a> {
    /// Explicit per-conjunct results (legacy shape; tests use it).
    Explicit(&'a [Option<bool>]),
    /// Every conjunct evaluated (short-circuiting off).
    Full(&'a [bool]),
    /// Short-circuited: `0..evaluated-1` true, `evaluated-1` is `pass`,
    /// the rest unknown.
    Prefix { evaluated: usize, pass: bool },
}

impl AtomResults<'_> {
    #[inline]
    fn get(&self, i: usize) -> Option<bool> {
        match *self {
            AtomResults::Explicit(r) => r[i],
            AtomResults::Full(r) => Some(r[i]),
            AtomResults::Prefix { evaluated, pass } => match (i + 1).cmp(&evaluated) {
                Ordering::Less => Some(true),
                Ordering::Equal => Some(pass),
                Ordering::Greater => None,
            },
        }
    }
}

/// The set of DPC monitors attached to one scan operator.
///
/// Drives all monitored expressions from a single per-page sampling
/// decision ([`page_sampled`], keyed by `(seed, page_id)`), so monitoring
/// cost is paid once per sampled page regardless of how many expressions
/// are watched — and so any page sub-range makes exactly the decisions
/// the whole-table scan would.
#[derive(Debug)]
pub struct ScanMonitorSet {
    exprs: Vec<ScanExprMonitor>,
    fraction: f64,
    seed: u64,
    page_sampled: bool,
    in_page: bool,
    pages_seen: u64,
    pages_sampled: u64,
    rows_seen: u64,
    rows_this_page: u64,
    hash_ops: u64,
    skipped_pages: u64,
    governor: Option<GovernorHandle>,
}

impl ScanMonitorSet {
    /// Builds a monitor set sampling pages at `fraction` (1.0 = every
    /// page; exact counts for all expressions).
    pub fn new(exprs: Vec<ScanExprMonitor>, fraction: f64, seed: u64) -> Self {
        ScanMonitorSet {
            exprs,
            fraction: fraction.clamp(f64::MIN_POSITIVE, 1.0),
            seed,
            page_sampled: false,
            in_page: false,
            pages_seen: 0,
            pages_sampled: 0,
            rows_seen: 0,
            rows_this_page: 0,
            hash_ops: 0,
            skipped_pages: 0,
            governor: None,
        }
    }

    /// Attaches the run's resource governor; the set consults it for
    /// deadline shedding at page boundaries.
    pub fn set_governor(&mut self, governor: GovernorHandle) {
        self.governor = Some(governor);
    }

    /// Whether any monitored expression requires short-circuiting off on
    /// sampled pages. Shed expressions no longer observe, so they stop
    /// forcing full evaluation.
    pub fn needs_full_eval(&self) -> bool {
        self.exprs.iter().any(|e| !e.shed && e.needs_full_eval())
    }

    /// Memory cost and shed class of each monitored expression, in expr
    /// order. `semi_join_bytes` is the size of the bit-vector filter a
    /// semi-join expression will test (the planner knows the configured
    /// filter size; the filter itself installs only after the build
    /// phase).
    pub fn expr_costs(&self, semi_join_bytes: usize) -> Vec<(usize, ShedClass)> {
        self.exprs
            .iter()
            .map(|e| {
                let base = std::mem::size_of::<ScanExprMonitor>();
                match &e.kind {
                    ScanExprKind::Atoms { indices, .. } => {
                        let bytes = base + indices.len() * std::mem::size_of::<usize>();
                        let class = if e.is_prefix() {
                            ShedClass::Exact
                        } else {
                            ShedClass::PageSampled
                        };
                        (bytes, class)
                    }
                    ScanExprKind::SemiJoin(_) => (base + semi_join_bytes, ShedClass::SemiJoin),
                }
            })
            .collect()
    }

    /// Sheds the expression at `idx`: it stops observing and its harvest
    /// is marked `budget_shed`. Idempotent.
    pub fn shed_expr(&mut self, idx: usize) {
        if let Some(e) = self.exprs.get_mut(idx) {
            e.shed = true;
            e.satisfied_this_page = false;
        }
    }

    /// Number of expressions currently shed.
    pub fn shed_count(&self) -> usize {
        self.exprs.iter().filter(|e| e.shed).count()
    }

    /// Bytes held by expressions that are still observing (shed
    /// expressions free their observation state) — the reservation
    /// system's reconciliation hook: what a query *actually* held, as
    /// opposed to the [`ScanMonitorSet::expr_costs`] admission estimate.
    pub fn resident_bytes(&self, semi_join_bytes: usize) -> usize {
        self.exprs
            .iter()
            .zip(self.expr_costs(semi_join_bytes))
            .filter(|(e, _)| !e.shed)
            .map(|(_, (bytes, _))| bytes)
            .sum()
    }

    /// Consults the governor's deadline against the simulated clock;
    /// once exceeded, sheds every still-live expression. Called by the
    /// scan at page boundaries, so shedding lands at the same page on
    /// every run regardless of worker count.
    pub fn check_deadline(&mut self, elapsed_ms: f64) {
        let Some(governor) = &self.governor else {
            return;
        };
        if !governor.borrow_mut().deadline_exceeded(elapsed_ms) {
            return;
        }
        let mut newly_shed = 0;
        for e in &mut self.exprs {
            if !e.shed {
                e.shed = true;
                e.satisfied_this_page = false;
                newly_shed += 1;
            }
        }
        if newly_shed > 0 {
            governor.borrow_mut().note_shed(newly_shed);
        }
    }

    /// Starts a new page; returns whether this page is sampled (the scan
    /// must then evaluate all conjuncts per row if
    /// [`ScanMonitorSet::needs_full_eval`]). `page` is the page's
    /// physical id within its table: the sampling decision is the pure
    /// function [`page_sampled`] of `(seed, page)`, so a morsel worker
    /// announcing the same page makes the same decision as a serial scan.
    pub fn start_page(&mut self, page: u32) -> bool {
        self.flush_page();
        self.in_page = true;
        self.pages_seen += 1;
        self.page_sampled = page_sampled(self.seed, page, self.fraction);
        if self.page_sampled {
            self.pages_sampled += 1;
        }
        self.page_sampled
    }

    /// Observes one row of the current page.
    ///
    /// `atom_results[i]` is `Some(truth)` for every conjunct the scan
    /// evaluated on this row (all of them on fully-evaluated pages;
    /// a short-circuited prefix otherwise); `row` is used for semi-join
    /// key hashing. Returns immediately on pages where nothing needs
    /// observing.
    pub fn observe_row<R: DatumAccess + ?Sized>(&mut self, atom_results: &[Option<bool>], row: &R) {
        self.observe_impl(AtomResults::Explicit(atom_results), row);
    }

    /// Observes a row whose conjuncts were *all* evaluated
    /// (short-circuiting off): `results[i]` is conjunct `i`'s truth.
    /// Equivalent to [`ScanMonitorSet::observe_row`] with every entry
    /// `Some`, without building an `Option` buffer.
    pub fn observe_full_row<R: DatumAccess + ?Sized>(&mut self, results: &[bool], row: &R) {
        self.observe_impl(AtomResults::Full(results), row);
    }

    /// Observes a short-circuited row: conjuncts `0..evaluated-1` passed,
    /// conjunct `evaluated-1` evaluated to `pass`, the rest are unknown —
    /// exactly the `(passed, evaluated)` pair
    /// [`Conjunction::eval_short_circuit`] returns. Equivalent to
    /// [`ScanMonitorSet::observe_row`] with the corresponding
    /// `Some(true)…Some(pass), None…` buffer, without building it.
    pub fn observe_prefix_row<R: DatumAccess + ?Sized>(
        &mut self,
        evaluated: usize,
        pass: bool,
        row: &R,
    ) {
        self.observe_impl(AtomResults::Prefix { evaluated, pass }, row);
    }

    /// Observes the current page in one call — the batched equivalent of
    /// one `observe_*_row` per row, fed from the scan's predicate-kernel
    /// bitmaps instead of per-row truth buffers.
    ///
    /// `stripes` holds one bitmap per conjunct: atom `i`'s per-slot truth
    /// occupies `stripes[i*words..(i+1)*words]`, bit `s` of the stripe
    /// covering slot `s`. On pages evaluated with short-circuiting, a
    /// stripe need only be correct for slots on which every earlier
    /// conjunct held (the short-circuit prefix); that is exactly the set
    /// of rows on which the serial path could observe atom `i`, so prefix
    /// expressions see identical truth. Non-prefix expressions are only
    /// consulted on sampled pages, where the scan evaluates every atom on
    /// every slot (`needs_full_eval`), making all stripes exact.
    ///
    /// Semi-join expressions need per-row key hashes, which a bitmap
    /// cannot carry — callers follow up with
    /// [`ScanMonitorSet::observe_semi_join_row`] while
    /// [`ScanMonitorSet::wants_semi_join_rows`] holds.
    pub fn observe_page_atoms(&mut self, stripes: &[u64], words: usize, n_rows: u64) {
        self.rows_seen += n_rows;
        self.rows_this_page += n_rows;
        if n_rows == 0 {
            return;
        }
        let sampled = self.page_sampled;
        for e in &mut self.exprs {
            if e.satisfied_this_page || e.shed {
                continue;
            }
            let ScanExprKind::Atoms {
                indices,
                prefix_len,
            } = &e.kind
            else {
                continue;
            };
            if prefix_len.is_none() && !sampled {
                continue;
            }
            // The expression is satisfied iff some slot passes all of its
            // atoms: AND the indexed stripes word by word and look for a
            // surviving bit. An empty index list is vacuously true on any
            // non-empty page, as in the per-row path.
            let satisfied = match indices.split_first() {
                None => true,
                Some((&first, rest)) => (0..words).any(|w| {
                    let mut acc = stripes[first * words + w];
                    for &i in rest {
                        if acc == 0 {
                            break;
                        }
                        acc &= stripes[i * words + w];
                    }
                    acc != 0
                }),
            };
            if satisfied {
                e.satisfied_this_page = true;
            }
        }
    }

    /// Whether the current page still needs per-row key observations for
    /// semi-join expressions (only sampled pages do, and only until every
    /// live semi-join expression has been satisfied).
    pub fn wants_semi_join_rows(&self) -> bool {
        self.page_sampled
            && self.exprs.iter().any(|e| {
                !e.shed && !e.satisfied_this_page && matches!(e.kind, ScanExprKind::SemiJoin(_))
            })
    }

    /// Observes one row's join key against the still-unsatisfied
    /// semi-join expressions of the current (sampled) page; the batched
    /// complement of the semi-join arm of `observe_impl`. Returns whether
    /// any semi-join expression is still unsatisfied — `false` lets the
    /// caller stop iterating the page's rows early, which is safe because
    /// the per-row path also stops charging hash ops for an expression
    /// once it is satisfied.
    pub fn observe_semi_join_row<R: DatumAccess + ?Sized>(&mut self, row: &R) -> bool {
        if !self.page_sampled {
            return false;
        }
        let mut unsatisfied = false;
        for e in &mut self.exprs {
            if e.satisfied_this_page || e.shed {
                continue;
            }
            let ScanExprKind::SemiJoin(slot) = &e.kind else {
                continue;
            };
            let cell = slot.borrow();
            self.hash_ops += 1;
            let hit = match &cell.filter {
                Some(f) => f.may_contain_ref(row.datum_ref(cell.key_column)),
                None => true,
            };
            if hit {
                e.satisfied_this_page = true;
            } else {
                unsatisfied = true;
            }
        }
        unsatisfied
    }

    /// Batched semi-join observation of one page: walks the page's row
    /// views only while a sampled semi-join expression is still
    /// unsatisfied — the bulk complement of calling
    /// [`ScanMonitorSet::observe_semi_join_row`] per row, with the same
    /// early stop and identical hash-op accounting.
    pub fn observe_semi_join_page<'a, R, I>(&mut self, rows: I) -> pf_common::Result<()>
    where
        R: DatumAccess + 'a,
        I: IntoIterator<Item = pf_common::Result<R>>,
    {
        if !self.wants_semi_join_rows() {
            return Ok(());
        }
        for view in rows {
            if !self.observe_semi_join_row(&view?) {
                break;
            }
        }
        Ok(())
    }

    fn observe_impl<R: DatumAccess + ?Sized>(&mut self, atom_results: AtomResults<'_>, row: &R) {
        let sampled = self.page_sampled;
        self.rows_seen += 1;
        self.rows_this_page += 1;
        for e in &mut self.exprs {
            if e.satisfied_this_page || e.shed {
                continue;
            }
            match &e.kind {
                ScanExprKind::Atoms {
                    indices,
                    prefix_len,
                } => {
                    // Exact (prefix) expressions observe every page;
                    // sampled expressions only sampled pages.
                    if prefix_len.is_none() && !sampled {
                        continue;
                    }
                    let satisfied = indices.iter().all(|&i| atom_results.get(i) == Some(true));
                    // On short-circuited rows a prefix expression may be
                    // undecidable only if an earlier atom was false — in
                    // which case it is correctly "not satisfied".
                    if satisfied {
                        e.satisfied_this_page = true;
                    }
                }
                ScanExprKind::SemiJoin(slot) => {
                    if !sampled {
                        continue;
                    }
                    let cell = slot.borrow();
                    self.hash_ops += 1;
                    let hit = match &cell.filter {
                        Some(f) => f.may_contain_ref(row.datum_ref(cell.key_column)),
                        // Filter not yet installed: conservatively true
                        // (cannot under-count; should not occur in a
                        // well-formed plan).
                        None => true,
                    };
                    if hit {
                        e.satisfied_this_page = true;
                    }
                }
            }
        }
    }

    /// Ends the scan (idempotent); call before harvesting.
    pub fn finish(&mut self) {
        self.flush_page();
        self.in_page = false;
        for e in &mut self.exprs {
            e.counter.finish();
        }
    }

    /// Hash operations performed by semi-join monitoring since the last
    /// call (for CPU accounting); resets the counter.
    pub fn take_hash_ops(&mut self) -> u64 {
        std::mem::take(&mut self.hash_ops)
    }

    /// Pages announced so far.
    pub fn pages_seen(&self) -> u64 {
        self.pages_seen
    }

    /// Pages sampled so far.
    pub fn pages_sampled(&self) -> u64 {
        self.pages_sampled
    }

    /// Records a page the scan skipped because its checksum failed. The
    /// scan must still announce the page via
    /// [`ScanMonitorSet::start_page`] first, so page/sample accounting
    /// matches a fault-free run; the page contributes no rows, so counts
    /// are unperturbed — but every harvested measurement is marked
    /// degraded (the actuals are now lower bounds).
    pub fn note_skipped_page(&mut self) {
        self.skipped_pages += 1;
        // A skipped page cannot satisfy anything: drop any sampled flag
        // so flush_page treats it as empty.
        self.page_sampled = false;
    }

    /// Pages skipped under this monitor set's watch.
    pub fn skipped_pages(&self) -> u64 {
        self.skipped_pages
    }

    /// Whether any page was skipped (estimates are lower bounds).
    pub fn is_degraded(&self) -> bool {
        self.skipped_pages > 0
    }

    /// Harvests measurements into a report, keyed by `table` name.
    pub fn harvest(&mut self, table: &str, report: &mut FeedbackReport) {
        self.finish();
        for e in &self.exprs {
            let count = e.counter.count();
            let (actual, mechanism) = if e.is_prefix() {
                (count as f64, Mechanism::ExactScan)
            } else {
                let scaled = count as f64 / self.fraction;
                match &e.kind {
                    ScanExprKind::SemiJoin(slot) => {
                        // Correct for hash collisions: a page with no
                        // true match still tests ≈ rows-per-page absent
                        // keys, each a false positive with probability
                        // `fill`. Solving
                        //   E[measured] = truth + (P − truth)·fpp
                        // for truth removes the page-level amplification
                        // of the filter's false-positive rate (the
                        // paper's "small overestimation" regime is
                        // recovered even with compact filters).
                        let cell = slot.borrow();
                        let (bits, fill) = cell
                            .filter
                            .as_ref()
                            .map_or((0, 0.0), |f| (f.numbits(), f.fill_ratio()));
                        let pages = self.pages_seen as f64;
                        let rpp = if self.pages_seen > 0 {
                            self.rows_seen as f64 / pages
                        } else {
                            0.0
                        };
                        let fpp = 1.0 - (1.0 - fill).powf(rpp);
                        // Floor at one page when any hit was observed —
                        // a join that returned rows touched ≥ 1 page.
                        let floor = if count > 0 { 1.0 } else { 0.0 };
                        let corrected = if fpp < 1.0 {
                            ((scaled - pages * fpp) / (1.0 - fpp)).clamp(floor, scaled)
                        } else {
                            scaled
                        };
                        (corrected, Mechanism::BitVector(bits))
                    }
                    ScanExprKind::Atoms { .. } => {
                        if self.fraction >= 1.0 {
                            (scaled, Mechanism::ExactScan)
                        } else {
                            (scaled, Mechanism::PageSampling(self.fraction))
                        }
                    }
                }
            };
            report.push(DpcMeasurement {
                table: table.to_string(),
                expression: e.label.clone(),
                estimated: e.estimated,
                actual,
                mechanism,
                degraded: self.skipped_pages > 0,
                skipped_pages: self.skipped_pages,
                budget_shed: e.shed,
            });
        }
    }

    fn flush_page(&mut self) {
        if self.in_page {
            // One grouped observation per page: `pages_seen` doubles as
            // the (strictly increasing) page ordinal, so the counter's
            // page-transition logic fires exactly once per scanned page.
            let page = self.pages_seen as u32;
            let rows = self.rows_this_page;
            for e in &mut self.exprs {
                e.counter
                    .observe_page(page, u64::from(e.satisfied_this_page), rows);
                e.satisfied_this_page = false;
            }
            self.rows_this_page = 0;
        }
        self.page_sampled = false;
    }

    /// Whether this set's observations can be partitioned across
    /// disjoint page ranges and merged exactly. Page sampling is a pure
    /// function of `(seed, page_id)` ([`page_sampled`]), shed flags
    /// replicate into morsel workers through [`MonitorTemplate`], and the
    /// semi-join harvest correction uses set-level row/page counters that
    /// [`ScanMonitorSet::absorb_partial`] sums exactly — so the only
    /// remaining serial dependency is a governor *deadline*, whose
    /// mid-run shedding assumes a single monotone clock.
    pub fn supports_partition(&self) -> bool {
        self.governor
            .as_ref()
            .is_none_or(|g| g.borrow().deadline_ms().is_none())
    }

    /// Extracts a plain-data recipe for rebuilding this set inside a
    /// morsel worker: per-expression atom indices, estimates, and
    /// (post-admission) shed flags, plus the sampling fraction and seed.
    /// Returns `None` when any expression is a semi-join — its slot is an
    /// `Rc` that cannot cross threads (the join morsel path builds its
    /// per-worker probe sets directly instead).
    pub fn template(&self) -> Option<MonitorTemplate> {
        let mut exprs = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            match &e.kind {
                ScanExprKind::Atoms { indices, .. } => exprs.push(TemplateExpr {
                    indices: indices.clone(),
                    estimated: e.estimated,
                    shed: e.shed,
                }),
                ScanExprKind::SemiJoin(_) => return None,
            }
        }
        Some(MonitorTemplate {
            exprs,
            fraction: self.fraction,
            seed: self.seed,
        })
    }

    /// Finishes the set and extracts its per-expression counters for a
    /// cross-thread merge. The set itself holds `Rc` handles and cannot
    /// leave its worker; the counters are plain mergeable sketches.
    pub fn into_partial(mut self) -> ScanMonitorPartial {
        self.finish();
        ScanMonitorPartial {
            counters: self.exprs.iter().map(|e| e.counter.clone()).collect(),
            pages_seen: self.pages_seen,
            pages_sampled: self.pages_sampled,
            rows_seen: self.rows_seen,
            skipped_pages: self.skipped_pages,
        }
    }

    /// Extracts a plain-data recipe for rebuilding this set's semi-join
    /// monitoring inside a probe-morsel worker. Only sets consisting of
    /// exactly one semi-join expression qualify (the shape
    /// `lower_join` builds for hash/INL probes); each worker
    /// instantiates the recipe around its own clone of the merged
    /// build-side filter, so the `Rc` slot never crosses a thread.
    pub fn semi_join_recipe(&self) -> Option<SemiJoinRecipe> {
        match self.exprs.as_slice() {
            [e] => match &e.kind {
                ScanExprKind::SemiJoin(slot) => Some(SemiJoinRecipe {
                    label: e.label.clone(),
                    estimated: e.estimated,
                    shed: e.shed,
                    fraction: self.fraction,
                    seed: self.seed,
                    key_column: slot.borrow().key_column,
                }),
                ScanExprKind::Atoms { .. } => None,
            },
            _ => None,
        }
    }

    /// Installs `filter` into the first semi-join expression's slot —
    /// how the morsel coordinator hands the merged build-side filter to
    /// the reference set before harvesting (the serial path installs it
    /// through the join operator instead).
    pub fn set_semi_join_filter(&mut self, filter: BitVectorFilter) {
        for e in &self.exprs {
            if let ScanExprKind::SemiJoin(slot) = &e.kind {
                slot.borrow_mut().filter = Some(filter);
                return;
            }
        }
    }

    /// Folds one morsel's finished partial into this set via
    /// [`GroupedPageCounter::merge`]. Exact when morsels scanned disjoint
    /// page ranges ([`ScanMonitorSet::supports_partition`]); call in
    /// morsel order so set-level counters accumulate deterministically.
    pub fn absorb_partial(&mut self, partial: &ScanMonitorPartial) {
        assert_eq!(
            self.exprs.len(),
            partial.counters.len(),
            "partial was extracted from a differently-shaped monitor set"
        );
        for (e, c) in self.exprs.iter_mut().zip(&partial.counters) {
            e.counter.merge(c);
        }
        self.pages_seen += partial.pages_seen;
        self.pages_sampled += partial.pages_sampled;
        self.rows_seen += partial.rows_seen;
        self.skipped_pages += partial.skipped_pages;
    }
}

/// A morsel worker's finished scan-monitor state, reduced to plain
/// mergeable data (`Send`): one [`GroupedPageCounter`] per monitored
/// expression plus the set-level page/row counters.
#[derive(Debug, Clone)]
pub struct ScanMonitorPartial {
    counters: Vec<GroupedPageCounter>,
    pages_seen: u64,
    pages_sampled: u64,
    rows_seen: u64,
    skipped_pages: u64,
}

/// One atom-conjunction expression of a [`MonitorTemplate`].
#[derive(Debug, Clone)]
struct TemplateExpr {
    indices: Vec<usize>,
    estimated: Option<f64>,
    shed: bool,
}

/// A plain-data (`Send + Sync`) recipe for rebuilding a scan's monitor
/// set inside a morsel worker, extracted once by the coordinator from
/// the reference lowering ([`ScanMonitorSet::template`]) — after
/// memory-budget admission, so shed flags replicate — and shared by
/// every morsel. Each worker's [`MonitorTemplate::instantiate`] yields a
/// set with identical labels, estimates, shed flags, and (page-keyed)
/// sampling decisions.
#[derive(Debug, Clone)]
pub struct MonitorTemplate {
    exprs: Vec<TemplateExpr>,
    fraction: f64,
    seed: u64,
}

// The whole point of the templates is to cross worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MonitorTemplate>();
    assert_send_sync::<ScanMonitorPartial>();
    assert_send_sync::<SemiJoinRecipe>();
    assert_send_sync::<FetchTemplate>();
};

/// A plain-data (`Send + Sync`) recipe for rebuilding a probe scan's
/// semi-join monitor set inside a join-morsel worker, extracted by the
/// coordinator from the reference lowering
/// ([`ScanMonitorSet::semi_join_recipe`]) after budget admission so the
/// shed flag replicates. Unlike [`MonitorTemplate`], instantiation takes
/// the (merged) build-side filter: each worker gets a private slot
/// holding its own clone, so no `Rc` crosses threads.
#[derive(Debug, Clone)]
pub struct SemiJoinRecipe {
    label: String,
    estimated: Option<f64>,
    shed: bool,
    fraction: f64,
    seed: u64,
    key_column: usize,
}

impl SemiJoinRecipe {
    /// Rebuilds a worker-local probe monitor set around `filter`.
    pub fn instantiate(&self, filter: BitVectorFilter) -> ScanMonitorSet {
        let slot = semi_join_slot(self.key_column);
        slot.borrow_mut().filter = Some(filter);
        let mut set = ScanMonitorSet::new(
            vec![ScanExprMonitor::semi_join(
                self.label.clone(),
                slot,
                self.estimated,
            )],
            self.fraction,
            self.seed,
        );
        if self.shed {
            set.shed_expr(0);
        }
        set
    }
}

impl MonitorTemplate {
    /// Rebuilds a worker-local monitor set over `predicate` — the same
    /// conjunction the reference set was built from, so rebuilt labels
    /// match the reference byte for byte.
    pub fn instantiate(&self, predicate: &Conjunction) -> ScanMonitorSet {
        let mut set = ScanMonitorSet::new(
            self.exprs
                .iter()
                .map(|t| ScanExprMonitor::atoms(predicate, t.indices.clone(), t.estimated))
                .collect(),
            self.fraction,
            self.seed,
        );
        for (i, t) in self.exprs.iter().enumerate() {
            if t.shed {
                set.shed_expr(i);
            }
        }
        set
    }
}

/// When a [`FetchMonitor`] observes a fetched row's page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchObserveWhen {
    /// Every fetched row (the DPC of the seek/join predicate itself).
    AllFetched,
    /// Only rows that also passed the residual predicate (the DPC of the
    /// full expression).
    PassedResidual,
}

/// A linear-counting DPC monitor on a Fetch (or INL-join inner fetch).
#[derive(Debug)]
pub struct FetchMonitor {
    /// Canonical expression text for the report.
    pub label: String,
    /// Optimizer estimate (if known).
    pub estimated: Option<f64>,
    /// When to observe.
    pub when: FetchObserveWhen,
    /// The probabilistic counter.
    pub counter: LinearCounter,
    /// `true` once the governor shed this monitor: it stops observing
    /// and its harvest is marked `budget_shed`.
    pub shed: bool,
    /// Table size the counter was sized for (kept so the monitor can be
    /// re-instantiated bit-identically in a morsel worker).
    table_pages: u32,
    /// Counter seed (ditto).
    seed: u64,
    governor: Option<GovernorHandle>,
}

impl FetchMonitor {
    /// A monitor sized for `table_pages` pages.
    pub fn new(
        label: impl Into<String>,
        when: FetchObserveWhen,
        table_pages: u32,
        estimated: Option<f64>,
        seed: u64,
    ) -> Self {
        FetchMonitor {
            label: label.into(),
            estimated,
            when,
            counter: LinearCounter::for_table(table_pages, seed),
            shed: false,
            table_pages,
            seed,
            governor: None,
        }
    }

    /// Extracts a plain-data recipe for rebuilding this monitor inside a
    /// fetch-morsel worker. Extracted after budget admission so the shed
    /// flag replicates; rebuilt counters share size and seed, so
    /// per-morsel [`LinearCounter::merge`] is exact.
    pub fn template(&self) -> FetchTemplate {
        FetchTemplate {
            label: self.label.clone(),
            when: self.when,
            table_pages: self.table_pages,
            estimated: self.estimated,
            seed: self.seed,
            shed: self.shed,
        }
    }

    /// Attaches the run's resource governor for deadline shedding.
    pub fn set_governor(&mut self, governor: GovernorHandle) {
        self.governor = Some(governor);
    }

    /// Memory this monitor holds — dominated by the linear counter's
    /// bitmap (one bit per table page).
    pub fn approx_bytes(&self) -> usize {
        self.counter.approx_bytes() + self.label.capacity()
    }

    /// Consults the governor's deadline; once exceeded, sheds this
    /// monitor. Called by the Fetch operator between fetched rows.
    pub fn check_deadline(&mut self, elapsed_ms: f64) {
        if self.shed {
            return;
        }
        let Some(governor) = &self.governor else {
            return;
        };
        let mut g = governor.borrow_mut();
        if g.deadline_exceeded(elapsed_ms) {
            self.shed = true;
            g.note_shed(1);
        }
    }

    /// Whether a governor deadline is attached. With a deadline, every
    /// fetched row is a potential shed point, so observations must stay
    /// row-at-a-time for shed timing to be reproducible; without one the
    /// Fetch operator may batch same-page runs into
    /// [`LinearCounter::observe_page`].
    pub fn has_deadline(&self) -> bool {
        self.governor
            .as_ref()
            .is_some_and(|g| g.borrow().deadline_ms().is_some())
    }

    /// Records a page whose rows could not be fetched (checksum failure):
    /// the linear counter never saw their PIDs, so its estimate is a
    /// lower bound and the harvested measurement is marked degraded.
    pub fn note_skipped_page(&mut self) {
        self.counter.note_skipped_page();
    }

    /// Harvests the measurement into a report.
    pub fn harvest(&self, table: &str, report: &mut FeedbackReport) {
        report.push(DpcMeasurement {
            table: table.to_string(),
            expression: self.label.clone(),
            estimated: self.estimated,
            actual: self.counter.estimate(),
            mechanism: Mechanism::LinearCounting,
            degraded: self.counter.is_degraded(),
            skipped_pages: self.counter.skipped_pages(),
            budget_shed: self.shed,
        });
    }
}

/// A plain-data (`Send + Sync`) recipe for rebuilding a
/// [`FetchMonitor`] inside a fetch-morsel worker
/// ([`FetchMonitor::template`]).
#[derive(Debug, Clone)]
pub struct FetchTemplate {
    label: String,
    when: FetchObserveWhen,
    table_pages: u32,
    estimated: Option<f64>,
    seed: u64,
    shed: bool,
}

impl FetchTemplate {
    /// Rebuilds a worker-local fetch monitor.
    pub fn instantiate(&self) -> FetchMonitor {
        let mut m = FetchMonitor::new(
            self.label.clone(),
            self.when,
            self.table_pages,
            self.estimated,
            self.seed,
        );
        m.shed = self.shed;
        m
    }
}

/// Shared handle to a scan monitor set.
pub type ScanMonitorHandle = Rc<RefCell<ScanMonitorSet>>;
/// Shared handle to a fetch monitor list.
pub type FetchMonitorHandle = Rc<RefCell<Vec<FetchMonitor>>>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AtomicPredicate, CompareOp};
    use pf_common::{Column, DataType, Datum, Row, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
        ])
    }

    fn conj(s: &Schema) -> Conjunction {
        Conjunction::new(vec![
            AtomicPredicate::new(s, "a", CompareOp::Lt, Datum::Int(10)).unwrap(),
            AtomicPredicate::new(s, "b", CompareOp::Lt, Datum::Int(10)).unwrap(),
        ])
    }

    #[test]
    fn prefix_detection() {
        let s = schema();
        let c = conj(&s);
        assert!(ScanExprMonitor::atoms(&c, vec![0], None).is_prefix());
        assert!(ScanExprMonitor::atoms(&c, vec![0, 1], None).is_prefix());
        assert!(!ScanExprMonitor::atoms(&c, vec![1], None).is_prefix());
        let sj = ScanExprMonitor::semi_join("j", semi_join_slot(0), None);
        assert!(!sj.is_prefix());
        assert!(
            !sj.needs_full_eval(),
            "semi-join needs hashes, not atom eval"
        );
    }

    #[test]
    fn exact_prefix_counts_every_page() {
        let s = schema();
        let c = conj(&s);
        let mut set = ScanMonitorSet::new(
            vec![ScanExprMonitor::atoms(&c, vec![0], None)],
            0.000_1, // sampling never fires, but prefixes are exact anyway
            1,
        );
        // 3 pages: match, no-match, match.
        for page in 0..3u32 {
            set.start_page(page);
            let hit = page != 1;
            set.observe_row(
                &[Some(hit), None],
                &Row::new(vec![Datum::Int(0), Datum::Int(0)]),
            );
        }
        let mut rep = FeedbackReport::new();
        set.harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, 2.0);
        assert_eq!(rep.measurements[0].mechanism, Mechanism::ExactScan);
    }

    #[test]
    fn non_prefix_scaled_by_fraction() {
        let s = schema();
        let c = conj(&s);
        let mut set = ScanMonitorSet::new(vec![ScanExprMonitor::atoms(&c, vec![1], None)], 1.0, 1);
        assert!(set.needs_full_eval());
        for page in 0..4u32 {
            let sampled = set.start_page(page);
            assert!(sampled, "f=1 samples everything");
            set.observe_row(
                &[Some(true), Some(page % 2 == 0)],
                &Row::new(vec![Datum::Int(0), Datum::Int(0)]),
            );
        }
        let mut rep = FeedbackReport::new();
        set.harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, 2.0);
    }

    #[test]
    fn semi_join_counts_filter_hits() {
        let slot = semi_join_slot(0);
        {
            let mut f = BitVectorFilter::new(256, 7);
            f.insert(&Datum::Int(5));
            slot.borrow_mut().filter = Some(f);
        }
        let mut set = ScanMonitorSet::new(
            vec![ScanExprMonitor::semi_join(
                "r1.k=r2.k",
                Rc::clone(&slot),
                None,
            )],
            1.0,
            2,
        );
        // Page 0: key 5 present (hit). Page 1: only key 6 (likely miss).
        set.start_page(0);
        set.observe_row(&[], &Row::new(vec![Datum::Int(5), Datum::Int(0)]));
        set.start_page(1);
        set.observe_row(&[], &Row::new(vec![Datum::Int(6), Datum::Int(0)]));
        let mut rep = FeedbackReport::new();
        set.harvest("r2", &mut rep);
        let actual = rep.measurements[0].actual;
        // One true-hit page; the collision correction shaves the
        // expected false-positive mass (tiny here), so allow ~1.
        assert!((0.9..=2.0).contains(&actual), "actual {actual}");
        assert!(set.take_hash_ops() >= 2);
        assert!(matches!(
            rep.measurements[0].mechanism,
            Mechanism::BitVector(_)
        ));
    }

    #[test]
    fn observation_shapes_are_equivalent() {
        let s = schema();
        let c = conj(&s);
        let row = Row::new(vec![Datum::Int(0), Datum::Int(0)]);
        let mk = || {
            ScanMonitorSet::new(
                vec![
                    ScanExprMonitor::atoms(&c, vec![0], None),
                    ScanExprMonitor::atoms(&c, vec![0, 1], None),
                    ScanExprMonitor::atoms(&c, vec![1], None),
                ],
                1.0,
                1,
            )
        };
        let harvest = |set: &mut ScanMonitorSet| {
            let mut rep = FeedbackReport::new();
            set.harvest("t", &mut rep);
            rep.measurements
                .iter()
                .map(|m| m.actual)
                .collect::<Vec<_>>()
        };
        // Full-eval shape: (true, false) per row on every page.
        let (mut a, mut b) = (mk(), mk());
        for p in 0..3u32 {
            a.start_page(p);
            a.observe_row(&[Some(true), Some(false)], &row);
            b.start_page(p);
            b.observe_full_row(&[true, false], &row);
        }
        assert_eq!(harvest(&mut a), harvest(&mut b));
        // Short-circuit shape: conjunct 0 passed, conjunct 1 failed.
        let (mut a, mut b) = (mk(), mk());
        for p in 0..3u32 {
            a.start_page(p);
            a.observe_row(&[Some(true), Some(false)], &row);
            b.start_page(p);
            b.observe_prefix_row(2, false, &row);
        }
        assert_eq!(harvest(&mut a), harvest(&mut b));
        // Short-circuit failing at conjunct 0: rest unknown.
        let (mut a, mut b) = (mk(), mk());
        a.start_page(0);
        a.observe_row(&[Some(false), None], &row);
        b.start_page(0);
        b.observe_prefix_row(1, false, &row);
        assert_eq!(harvest(&mut a), harvest(&mut b));
    }

    #[test]
    fn skipped_pages_mark_harvest_degraded() {
        let s = schema();
        let c = conj(&s);
        let mut set = ScanMonitorSet::new(vec![ScanExprMonitor::atoms(&c, vec![0], None)], 1.0, 1);
        let row = Row::new(vec![Datum::Int(0), Datum::Int(0)]);
        set.start_page(0);
        set.observe_row(&[Some(true), None], &row);
        // Next page turns out corrupt: announced, then skipped.
        set.start_page(1);
        set.note_skipped_page();
        set.start_page(2);
        set.observe_row(&[Some(true), None], &row);
        let mut rep = FeedbackReport::new();
        set.harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, 2.0, "skip does not count");
        assert!(rep.measurements[0].degraded);
        assert_eq!(rep.measurements[0].skipped_pages, 1);
        assert!(rep.is_degraded());
    }

    #[test]
    fn fetch_monitor_degrades_on_skips() {
        let mut m = FetchMonitor::new("a<10", FetchObserveWhen::AllFetched, 100, None, 3);
        m.counter.observe(1);
        m.note_skipped_page();
        let mut rep = FeedbackReport::new();
        m.harvest("t", &mut rep);
        assert!(rep.measurements[0].degraded);
        assert_eq!(rep.measurements[0].skipped_pages, 1);
    }

    #[test]
    fn fetch_monitor_harvests_linear_estimate() {
        let mut m = FetchMonitor::new("a<10", FetchObserveWhen::AllFetched, 1000, Some(5.0), 3);
        for p in 0..100u32 {
            m.counter.observe(p);
            m.counter.observe(p);
        }
        let mut rep = FeedbackReport::new();
        m.harvest("t", &mut rep);
        let a = rep.measurements[0].actual;
        assert!((90.0..110.0).contains(&a), "estimate {a}");
        assert_eq!(rep.measurements[0].estimated, Some(5.0));
    }

    #[test]
    fn shed_exprs_stop_counting_and_mark_harvest() {
        let s = schema();
        let c = conj(&s);
        let row = Row::new(vec![Datum::Int(0), Datum::Int(0)]);
        let mut set = ScanMonitorSet::new(
            vec![
                ScanExprMonitor::atoms(&c, vec![0], None),
                ScanExprMonitor::atoms(&c, vec![1], None),
            ],
            1.0,
            1,
        );
        assert!(set.needs_full_eval());
        set.start_page(0);
        set.observe_row(&[Some(true), Some(true)], &row);
        // Shed the non-prefix expression mid-run.
        set.shed_expr(1);
        assert_eq!(set.shed_count(), 1);
        assert!(!set.needs_full_eval(), "shed expr stops forcing full eval");
        set.start_page(1);
        set.observe_row(&[Some(true), Some(true)], &row);
        let mut rep = FeedbackReport::new();
        set.harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, 2.0);
        assert!(!rep.measurements[0].budget_shed);
        // The shed expr counted only the pre-shed page... but its page-1
        // satisfaction was cleared at shed time, so it kept nothing.
        assert!(rep.measurements[1].budget_shed);
        assert!(rep.is_budget_shed());
        assert!(rep.measurements[1].actual <= 1.0);
    }

    #[test]
    fn deadline_sheds_every_live_expr() {
        use crate::governor::governor_handle;
        let s = schema();
        let c = conj(&s);
        let row = Row::new(vec![Datum::Int(0), Datum::Int(0)]);
        let mut set = ScanMonitorSet::new(
            vec![
                ScanExprMonitor::atoms(&c, vec![0], None),
                ScanExprMonitor::atoms(&c, vec![1], None),
            ],
            1.0,
            1,
        );
        let gov = governor_handle(None, Some(5.0));
        set.set_governor(Rc::clone(&gov));
        set.check_deadline(4.0);
        assert_eq!(set.shed_count(), 0, "before the deadline nothing sheds");
        set.start_page(0);
        set.observe_row(&[Some(true), Some(true)], &row);
        set.check_deadline(5.5);
        assert_eq!(set.shed_count(), 2);
        assert_eq!(gov.borrow().shed_monitors(), 2);
        assert!(gov.borrow().deadline_fired());
        let mut rep = FeedbackReport::new();
        set.harvest("t", &mut rep);
        assert!(rep.measurements.iter().all(|m| m.budget_shed));
    }

    #[test]
    fn expr_costs_classify_monitors() {
        use crate::governor::ShedClass;
        let s = schema();
        let c = conj(&s);
        let set = ScanMonitorSet::new(
            vec![
                ScanExprMonitor::atoms(&c, vec![0], None),
                ScanExprMonitor::atoms(&c, vec![1], None),
                ScanExprMonitor::semi_join("j", semi_join_slot(0), None),
            ],
            1.0,
            1,
        );
        let costs = set.expr_costs(4096 / 8);
        assert_eq!(costs[0].1, ShedClass::Exact);
        assert_eq!(costs[1].1, ShedClass::PageSampled);
        assert_eq!(costs[2].1, ShedClass::SemiJoin);
        assert!(
            costs[2].0 >= 4096 / 8 && costs[2].0 > costs[1].0,
            "semi-join carries the filter bytes"
        );
    }

    #[test]
    fn fetch_monitor_sheds_on_deadline_and_stays_shed() {
        use crate::governor::governor_handle;
        let mut m = FetchMonitor::new("a<10", FetchObserveWhen::AllFetched, 100, None, 3);
        assert!(m.approx_bytes() > 0);
        let gov = governor_handle(None, Some(2.0));
        m.set_governor(Rc::clone(&gov));
        m.check_deadline(1.0);
        assert!(!m.shed);
        m.check_deadline(3.0);
        assert!(m.shed);
        assert_eq!(gov.borrow().shed_monitors(), 1);
        // Re-checking must not double-count the shed.
        m.check_deadline(4.0);
        assert_eq!(gov.borrow().shed_monitors(), 1);
        let mut rep = FeedbackReport::new();
        m.harvest("t", &mut rep);
        assert!(rep.measurements[0].budget_shed);
    }

    #[test]
    fn unsampled_pages_skip_sampled_exprs_but_not_prefixes() {
        let s = schema();
        let c = conj(&s);
        // Fraction so small no page gets sampled (seeded).
        let mut set = ScanMonitorSet::new(
            vec![
                ScanExprMonitor::atoms(&c, vec![0], None),
                ScanExprMonitor::atoms(&c, vec![1], None),
            ],
            1e-9,
            5,
        );
        for p in 0..50u32 {
            let sampled = set.start_page(p);
            let results = if sampled {
                [Some(true), Some(true)]
            } else {
                [Some(true), None]
            };
            set.observe_row(&results, &Row::new(vec![Datum::Int(0), Datum::Int(0)]));
        }
        let mut rep = FeedbackReport::new();
        set.harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, 50.0, "prefix exact");
        // Sampled expr saw no sampled pages: 0 count (scaled 0).
        assert_eq!(rep.measurements[1].actual, 0.0);
    }

    /// The sampling decision depends only on `(seed, page)` — never on
    /// how many pages were announced before it — so any page sub-range
    /// reproduces the serial decisions. Also sanity-checks the rate.
    #[test]
    fn page_sampling_is_order_free_and_roughly_calibrated() {
        let (seed, fraction) = (0xFEED, 0.25);
        let serial: Vec<bool> = (0..4_000)
            .map(|p| page_sampled(seed, p, fraction))
            .collect();
        // Reversed, interleaved, or chunked evaluation: same decisions.
        for p in (0..4_000u32).rev() {
            assert_eq!(page_sampled(seed, p, fraction), serial[p as usize]);
        }
        let hits = serial.iter().filter(|&&s| s).count();
        assert!((800..1200).contains(&hits), "got {hits} of 4000 at f=0.25");
        // Different seeds draw different page sets.
        let other: Vec<bool> = (0..4_000)
            .map(|p| page_sampled(seed ^ 1, p, fraction))
            .collect();
        assert_ne!(serial, other);
        // f ≥ 1 samples everything, unconditionally.
        assert!((0..100).all(|p| page_sampled(seed, p, 1.0)));
    }

    /// A set split across two page-range "morsels" (each announcing its
    /// own global page ids) merges to exactly the serial set — including
    /// with sampling on.
    #[test]
    fn sampled_partials_merge_to_serial() {
        let s = schema();
        let c = conj(&s);
        let row = Row::new(vec![Datum::Int(0), Datum::Int(0)]);
        let mk = || {
            ScanMonitorSet::new(
                vec![
                    ScanExprMonitor::atoms(&c, vec![0], None),
                    ScanExprMonitor::atoms(&c, vec![1], None),
                ],
                0.5,
                42,
            )
        };
        let feed = |set: &mut ScanMonitorSet, pages: std::ops::Range<u32>| {
            for p in pages {
                set.start_page(p);
                set.observe_row(&[Some(true), Some(p % 3 == 0)], &row);
            }
        };
        let mut serial = mk();
        feed(&mut serial, 0..40);
        let mut reference = mk();
        let (mut lo, mut hi) = (mk(), mk());
        feed(&mut lo, 0..23);
        feed(&mut hi, 23..40);
        reference.absorb_partial(&lo.into_partial());
        reference.absorb_partial(&hi.into_partial());
        let harvest = |set: &mut ScanMonitorSet| {
            let mut rep = FeedbackReport::new();
            set.harvest("t", &mut rep);
            rep
        };
        assert_eq!(serial.pages_sampled(), reference.pages_sampled());
        assert_eq!(harvest(&mut serial), harvest(&mut reference));
    }

    /// Template round-trip: instantiated sets reproduce labels,
    /// estimates, shed flags, and sampling decisions; semi-join sets
    /// refuse to template.
    #[test]
    fn template_reproduces_reference_set() {
        let s = schema();
        let c = conj(&s);
        let mut set = ScanMonitorSet::new(
            vec![
                ScanExprMonitor::atoms(&c, vec![0], Some(7.0)),
                ScanExprMonitor::atoms(&c, vec![1], None),
            ],
            0.5,
            99,
        );
        set.shed_expr(1);
        let template = set.template().expect("atom-only set must template");
        let mut rebuilt = template.instantiate(&c);
        assert_eq!(rebuilt.shed_count(), 1);
        let row = Row::new(vec![Datum::Int(0), Datum::Int(0)]);
        for p in 0..20u32 {
            assert_eq!(set.start_page(p), rebuilt.start_page(p), "page {p}");
            set.observe_row(&[Some(true), Some(true)], &row);
            rebuilt.observe_row(&[Some(true), Some(true)], &row);
        }
        let harvest = |set: &mut ScanMonitorSet| {
            let mut rep = FeedbackReport::new();
            set.harvest("t", &mut rep);
            rep
        };
        assert_eq!(harvest(&mut set), harvest(&mut rebuilt));

        let sj = ScanMonitorSet::new(
            vec![ScanExprMonitor::semi_join("j", semi_join_slot(0), None)],
            1.0,
            1,
        );
        assert!(sj.template().is_none(), "semi-join slots cannot template");
    }

    /// The partition gate: only a governor deadline forces serial.
    #[test]
    fn partition_support_blocks_only_deadlines() {
        use crate::governor::governor_handle;
        let s = schema();
        let c = conj(&s);
        let mk = |fraction| {
            ScanMonitorSet::new(vec![ScanExprMonitor::atoms(&c, vec![1], None)], fraction, 1)
        };
        assert!(mk(1.0).supports_partition());
        assert!(mk(0.25).supports_partition(), "sampling now partitions");
        let mut shed = mk(1.0);
        shed.shed_expr(0);
        assert!(shed.supports_partition(), "shed flags replicate");
        let mut budget = mk(1.0);
        budget.set_governor(governor_handle(Some(1024), None));
        assert!(budget.supports_partition(), "memory budgets partition");
        let mut deadline = mk(1.0);
        deadline.set_governor(governor_handle(None, Some(5.0)));
        assert!(!deadline.supports_partition(), "deadlines stay serial");
    }
}
