//! SE-side scans: full sequential scan and clustered range scan.
//!
//! Scans are where the paper's machinery concentrates: predicates are
//! evaluated *inside* the scan (Example 2's dotted box), pages arrive
//! grouped (Fig 2, left), and the attached
//! [`crate::monitor::ScanMonitorSet`] implements
//! exact counting for prefix expressions plus `DPSample` for the rest.

use crate::context::ExecContext;
use crate::expr::{Conjunction, PageKernel};
use crate::monitor::ScanMonitorHandle;
use crate::op::Operator;
use pf_common::{Datum, PageId, Result, Row, Schema, SlotId, TableId};
use pf_feedback::{bitmap, BitVectorFilter};
use pf_storage::{AccessPattern, Page, RowLayout, RowView, TableStorage};
use std::collections::VecDeque;
use std::sync::Arc;

/// Whether page-at-a-time predicate kernels are enabled. The
/// `PF_SCAN_KERNELS` escape hatch (`off` or `0`) forces the row-at-a-time
/// reference path — used by the identity tests and for triage; results
/// are bit-identical either way.
fn kernels_enabled() -> bool {
    pf_common::env_switch("PF_SCAN_KERNELS", true)
}

/// A sequential scan over a contiguous page range of one table, with the
/// query predicate pushed into the storage engine.
pub struct SeqScan {
    storage: Arc<TableStorage>,
    table_id: TableId,
    predicate: Conjunction,
    monitors: Option<ScanMonitorHandle>,
    /// `[first, last)` pages to scan.
    page_range: (u32, u32),
    /// Whether the first page access is a random I/O (a clustered seek
    /// positions the disk arm once, then reads sequentially).
    first_random: bool,
    next_page: u32,
    started: bool,
    finished: bool,
    /// Materialized qualifying rows of the current page, each tagged
    /// with its `(page, slot)` provenance so deferred observation can
    /// re-derive a view without cloning the row.
    buffer: VecDeque<(Row, u32, u16)>,
    /// Per-conjunct truth of the current row on fully-evaluated pages
    /// (row-at-a-time fallback path only).
    atom_buf: Vec<bool>,
    /// Reusable per-page bitmap of qualifying slots: predicates are
    /// evaluated over the page in one batched pass, and only the slots
    /// marked here are materialized into `buffer` (rows the parent will
    /// actually receive).
    qualifying: Vec<u64>,
    /// Reusable per-atom truth stripes for the kernel path: atom `i`'s
    /// per-slot results occupy words `i*words..(i+1)*words`.
    atom_bits: Vec<u64>,
    /// Reusable all-slots mask of the current page (first `n_rows` bits).
    page_mask: Vec<u64>,
    /// Reusable slot-directory offsets of the current page.
    slot_offs: Vec<u32>,
    /// Compiled page-at-a-time kernel; `None` when any predicate column
    /// is outside the fixed-width prefix or kernels are disabled, in
    /// which case every page takes the row-at-a-time path.
    kernel: Option<PageKernel>,
    /// When set, monitors observe each row as it is *delivered* to the
    /// parent (not when its page is loaded). Required for partial
    /// bit-vector filters under a streaming merge join (Section IV): the
    /// filter grows while the scan runs, so a row must be tested no
    /// earlier than the moment the join consumes it. Only valid for
    /// monitor sets with no full-evaluation needs (semi-join monitors).
    deferred_monitoring: bool,
    /// Semi-join pre-filter pushed down from a vectorized hash join:
    /// once the build side completes, its merged [`BitVectorFilter`] is
    /// evaluated in the page pass (after monitors observe the full
    /// page) and rows with no possible build match are culled before
    /// materialization. Charging rule: one hash op per qualifying row
    /// *tested* — exactly the per-probe-row hash the join itself would
    /// have charged — so I/O statistics are byte-identical to the
    /// unfiltered plan.
    prefilter: Option<(BitVectorFilter, usize)>,
    last_delivered_page: Option<u32>,
    /// Deferred mode observes each row one delivery *late*: a streaming
    /// merge join advances its outer side (growing the partial filter)
    /// only after receiving a probe row, so the filter is complete for
    /// that row's key exactly when the *next* row is requested. Held as
    /// `(page, slot)` — the view is re-derived at observation time.
    pending_observation: Option<(u32, u16)>,
}

impl SeqScan {
    /// Shared constructor: `page_range` is already clamped by callers.
    fn build(
        storage: Arc<TableStorage>,
        table_id: TableId,
        predicate: Conjunction,
        monitors: Option<ScanMonitorHandle>,
        page_range: (u32, u32),
        first_random: bool,
    ) -> Self {
        let kernel = if kernels_enabled() {
            predicate.compile_page_kernel(storage.layout())
        } else {
            None
        };
        SeqScan {
            next_page: page_range.0,
            storage,
            table_id,
            predicate,
            monitors,
            page_range,
            first_random,
            started: false,
            finished: false,
            buffer: VecDeque::new(),
            atom_buf: Vec::new(),
            qualifying: Vec::new(),
            atom_bits: Vec::new(),
            page_mask: Vec::new(),
            slot_offs: Vec::new(),
            kernel,
            deferred_monitoring: false,
            prefilter: None,
            last_delivered_page: None,
            pending_observation: None,
        }
    }

    /// A full-table scan.
    pub fn full(
        storage: Arc<TableStorage>,
        table_id: TableId,
        predicate: Conjunction,
        monitors: Option<ScanMonitorHandle>,
    ) -> Self {
        let pages = storage.page_count();
        Self::build(storage, table_id, predicate, monitors, (0, pages), false)
    }

    /// A scan restricted to the page sub-range `[first, last)` — one
    /// morsel of a partitioned scan. `first_random` declares whether the
    /// morsel's first page access pays a random (positioning) I/O; only
    /// the morsel that inherits a clustered seek's initial placement
    /// should pass `true`, so the summed per-morsel I/O counters equal a
    /// serial scan of the whole range exactly.
    pub fn with_page_range(
        storage: Arc<TableStorage>,
        table_id: TableId,
        predicate: Conjunction,
        monitors: Option<ScanMonitorHandle>,
        page_range: (u32, u32),
        first_random: bool,
    ) -> Self {
        let last = page_range.1.min(storage.page_count());
        let first = page_range.0.min(last);
        Self::build(
            storage,
            table_id,
            predicate,
            monitors,
            (first, last),
            first_random,
        )
    }

    /// Switches to delivery-time monitoring (see the field docs). Only
    /// valid for predicate-free scans with semi-join monitors: filtered
    /// rows would never be delivered, hence never observed.
    pub fn with_deferred_monitoring(mut self) -> Self {
        assert!(
            self.predicate.is_empty(),
            "deferred monitoring requires a predicate-free scan"
        );
        if let Some(m) = &self.monitors {
            assert!(
                !m.borrow().needs_full_eval(),
                "deferred monitoring supports semi-join monitors only"
            );
        }
        self.deferred_monitoring = true;
        self
    }

    /// A clustered range scan: pages bracketing clustering-key values in
    /// `[lo, hi]` (either bound optional), positioned with one random
    /// I/O then read sequentially.
    pub fn clustered_range(
        storage: Arc<TableStorage>,
        table_id: TableId,
        lo: Option<&Datum>,
        hi: Option<&Datum>,
        predicate: Conjunction,
        monitors: Option<ScanMonitorHandle>,
    ) -> Result<Self> {
        let (first, last) = storage.locate_range(lo, hi)?;
        Ok(Self::build(
            storage,
            table_id,
            predicate,
            monitors,
            (first, last),
            true,
        ))
    }

    /// Pages this scan will touch.
    pub fn pages_to_scan(&self) -> u32 {
        self.page_range.1 - self.page_range.0
    }

    /// The storage this scan reads — page-batched parents use it to
    /// re-derive row views by `(page, slot)` provenance.
    pub fn storage(&self) -> &Arc<TableStorage> {
        &self.storage
    }

    /// Installs a semi-join pre-filter over `key_col` (see the field
    /// docs for the charging contract). Only meaningful before the
    /// first delivery; deferred-monitoring scans cannot take one (their
    /// filter is still growing while pages stream).
    pub fn set_semi_join_prefilter(&mut self, filter: BitVectorFilter, key_col: usize) {
        assert!(
            !self.deferred_monitoring,
            "prefilter pushdown requires a completed build-side filter"
        );
        self.prefilter = Some((filter, key_col));
    }

    /// Materializing page load: evaluates the next page and buffers its
    /// qualifying rows for row-at-a-time delivery.
    fn load_next_page(&mut self, ctx: &mut ExecContext) -> Result<bool> {
        match self.eval_next_page(ctx)? {
            PageEval::Exhausted => Ok(false),
            PageEval::Skipped => Ok(true),
            PageEval::Ready { pid } => {
                // Pass 2: materialize only the qualifying rows — the
                // ones the parent operator will actually receive. The
                // page passed verification in the eval pass, so this
                // re-lookup (no re-verify, no new I/O: residency was
                // charged there) sees the same bytes.
                let storage = Arc::clone(&self.storage);
                let page = storage.checked_page(PageId(pid), ctx.fault_attempt, false)?;
                let layout = storage.layout();
                for (word, &bits) in self.qualifying.iter().enumerate() {
                    let mut bits = bits;
                    while bits != 0 {
                        let slot = word * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let row = page.view(layout, SlotId(slot as u16))?.materialize();
                        self.buffer.push_back((row, pid, slot as u16));
                    }
                }
                Ok(true)
            }
        }
    }

    /// Evaluates the next page of the range into the `qualifying`
    /// bitmap — checksum verification, monitor observation, predicate
    /// kernels, prefilter culling, and every I/O charge happen here,
    /// identically for the materializing and the page-batched
    /// consumers. No row is decoded into owned values.
    fn eval_next_page(&mut self, ctx: &mut ExecContext) -> Result<PageEval> {
        if self.next_page >= self.page_range.1 {
            return Ok(PageEval::Exhausted);
        }
        // Page-boundary cancellation/deadline checkpoint: one per page
        // actually visited, so `CancelToken::cancel_after(k)` aborts
        // exactly before the (k+1)-th page is read.
        ctx.check_interrupt()?;
        let pid = PageId(self.next_page);
        self.next_page += 1;
        let pattern = if self.first_random && !self.started {
            AccessPattern::Random
        } else {
            AccessPattern::Sequential
        };
        self.started = true;
        let hit = ctx.pool.access(self.table_id, pid, pattern);
        // A miss means the bytes "came from disk": verify the checksum
        // (and let the fault plan interpose). A corrupt page is skipped
        // and recorded rather than failing the query; monitors are told
        // so every harvested estimate is marked degraded.
        let page = match self.storage.checked_page(pid, ctx.fault_attempt, !hit) {
            Ok(p) => p,
            Err(pf_common::Error::ChecksumMismatch { .. }) => {
                ctx.pool.skip_corrupt(self.table_id, pid);
                if let Some(m) = &self.monitors {
                    let mut m = m.borrow_mut();
                    if !self.deferred_monitoring {
                        // Announce the page first so page/sample
                        // accounting matches a fault-free run.
                        m.start_page(pid.0);
                    }
                    m.note_skipped_page();
                }
                return Ok(PageEval::Skipped);
            }
            Err(e) => return Err(e),
        };
        let layout = self.storage.layout();
        ctx.pool.charge_rows(u64::from(page.slot_count()));

        // Monitoring setup for this page (Fig 4, steps 3–4). In
        // deferred mode the page is announced when its first row is
        // delivered instead.
        let elapsed = ctx.elapsed_ms();
        let (_sampled, full_eval) = match &self.monitors {
            Some(m) if !self.deferred_monitoring => {
                let mut m = m.borrow_mut();
                // Page boundaries are the deadline checkpoints: the
                // simulated clock is deterministic, so shedding lands on
                // the same page in every run.
                m.check_deadline(elapsed);
                let sampled = m.start_page(pid.0);
                (sampled, sampled && m.needs_full_eval())
            }
            _ => (false, false),
        };

        // Pass 1: evaluate the whole page into the qualifying bitmap —
        // no row is decoded into owned values here.
        //
        // Preferred (kernel) path: comparison atoms read their operands
        // straight out of the page buffer's fixed-prefix region, one
        // truth stripe per atom, with no `RowView` construction (and no
        // per-row validation walk) for rows that are only observed,
        // never delivered. Monitors then receive one batched per-page
        // observation instead of N per-row calls. Falls back to the
        // row-at-a-time reference path when the predicate has
        // non-fixed-prefix columns, kernels are disabled, or a slot
        // directory fails the kernel's bounds pre-check. Both paths are
        // bit-identical in counts, I/O charges, and sketch contents.
        let natoms = self.predicate.len();
        let n_rows = usize::from(page.slot_count());
        let words = n_rows.div_ceil(64);
        self.qualifying.clear();
        self.qualifying.resize(words, 0);

        let mut used_kernel = false;
        if let Some(kernel) = &self.kernel {
            if page.slot_offsets(kernel.span(), &mut self.slot_offs) {
                used_kernel = true;
                self.page_mask.clear();
                self.page_mask.resize(words, 0);
                bitmap::fill_ones(&mut self.page_mask, n_rows);
                self.qualifying.copy_from_slice(&self.page_mask);
                self.atom_bits.clear();
                self.atom_bits.resize(natoms * words, 0);
                let bytes = page.bytes();

                // Cascade: entering atom `i`, `qualifying` is the
                // short-circuit prefix (rows passing atoms 0..i), so the
                // per-atom popcount sums to exactly the evaluations the
                // row-at-a-time path charges. On fully-evaluated pages
                // every atom is evaluated on every slot instead, and the
                // surplus is charged as monitoring overhead — the same
                // `natoms·n_rows − short_circuit_evals` a per-row
                // `eval_all` accumulates.
                let mut sc_evals = 0u64;
                for i in 0..natoms {
                    sc_evals += bitmap::popcount(&self.qualifying);
                    let stripe = i * words..(i + 1) * words;
                    let active = if full_eval {
                        &self.page_mask
                    } else {
                        &self.qualifying
                    };
                    kernel.eval_atom(
                        i,
                        bytes,
                        &self.slot_offs,
                        active,
                        &mut self.atom_bits[stripe.clone()],
                    );
                    bitmap::and_into(&mut self.qualifying, &self.atom_bits[stripe]);
                }
                ctx.pool.charge_pred_evals(sc_evals);
                if full_eval {
                    ctx.pool
                        .charge_extra_pred_evals((natoms as u64) * (n_rows as u64) - sc_evals);
                }

                if let Some(m) = &self.monitors {
                    if !self.deferred_monitoring {
                        let mut m = m.borrow_mut();
                        m.observe_page_atoms(&self.atom_bits, words, n_rows as u64);
                        ctx.pool.charge_monitor_ops(n_rows as u64);
                        // Semi-join expressions hash per-row keys, which
                        // bitmaps cannot carry: the batched observation
                        // walks views only on sampled pages with live
                        // semi-join monitors, stopping as soon as all
                        // are satisfied.
                        m.observe_semi_join_page(page.cursor(layout))?;
                    }
                }
            }
        }

        if !used_kernel {
            for (slot, view) in page.cursor(layout).enumerate() {
                let view = view?;
                let pass = if full_eval {
                    // Short-circuiting OFF for this sampled page:
                    // evaluate every conjunct, charging the surplus as
                    // monitoring overhead.
                    let pass = self.predicate.eval_all(&view, &mut self.atom_buf);
                    let sc_evals = match self.atom_buf.iter().position(|r| !*r) {
                        Some(i) => i + 1,
                        None => natoms,
                    };
                    ctx.pool.charge_pred_evals(sc_evals as u64);
                    ctx.pool.charge_extra_pred_evals((natoms - sc_evals) as u64);
                    if let Some(m) = &self.monitors {
                        m.borrow_mut().observe_full_row(&self.atom_buf, &view);
                        ctx.pool.charge_monitor_ops(1);
                    }
                    pass
                } else {
                    let (pass, evaluated) = self.predicate.eval_short_circuit(&view);
                    ctx.pool.charge_pred_evals(evaluated as u64);
                    if self.monitors.is_some() && !self.deferred_monitoring {
                        if let Some(m) = &self.monitors {
                            // Truths known from short-circuit evaluation:
                            // conjuncts before the stopping point are
                            // true, the stopping conjunct is true iff the
                            // row passed, later conjuncts were never
                            // evaluated.
                            m.borrow_mut().observe_prefix_row(evaluated, pass, &view);
                            ctx.pool.charge_monitor_ops(1);
                        }
                    }
                    pass
                };
                if pass {
                    self.qualifying[slot / 64] |= 1 << (slot % 64);
                }
            }
        }

        // Prefilter pass: cull qualifying rows whose join key cannot be
        // on the build side. Runs strictly after monitor observation
        // (sketches must see the full page) and charges one hash per
        // row tested — the hash the consuming join charges per probe
        // row on the unfiltered path, keeping I/O statistics
        // byte-identical.
        if let Some((filter, key_col)) = &self.prefilter {
            for word in 0..self.qualifying.len() {
                let mut bits = self.qualifying[word];
                while bits != 0 {
                    let slot = word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    ctx.pool.charge_hashes(1);
                    let key = page.view(layout, SlotId(slot as u16))?.get(*key_col);
                    if !filter.may_contain_ref(key) {
                        self.qualifying[word] &= !(1u64 << (slot % 64));
                    }
                }
            }
        }

        if let Some(m) = &self.monitors {
            let hashes = m.borrow_mut().take_hash_ops();
            ctx.pool.charge_hashes(hashes);
        }
        Ok(PageEval::Ready { pid: pid.0 })
    }
}

/// Outcome of one page-evaluation step.
enum PageEval {
    /// The page range is exhausted.
    Exhausted,
    /// The page failed verification and was skipped (recorded as
    /// degraded); the scan continues with the next page.
    Skipped,
    /// `qualifying` holds the page's surviving slots.
    Ready { pid: u32 },
}

/// Borrowed access to the qualifying rows of one evaluated page —
/// what a page-batched consumer receives in place of materialized
/// rows. Every charge for the page has already been applied.
pub struct PageRows<'a> {
    page: &'a Page,
    layout: &'a RowLayout,
    qualifying: &'a [u64],
    pid: u32,
}

impl<'a> PageRows<'a> {
    /// The page id these rows come from.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Number of qualifying rows on the page.
    pub fn len(&self) -> u64 {
        bitmap::popcount(self.qualifying)
    }

    /// Whether the page has no qualifying rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Visits each qualifying row as a borrowed view, in slot order.
    pub fn for_each(&self, mut f: impl FnMut(u16, RowView<'a>) -> Result<()>) -> Result<()> {
        for (word, &bits) in self.qualifying.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let slot = (word * 64 + bits.trailing_zeros() as usize) as u16;
                bits &= bits - 1;
                f(slot, self.page.view(self.layout, SlotId(slot))?)?;
            }
        }
        Ok(())
    }
}

impl SeqScan {
    /// Whether this scan can serve [`SeqScan::next_page_rows`]:
    /// deferred-monitoring scans cannot (observation there is coupled
    /// to delivery order), so batch consumers must fall back to row
    /// pulls.
    pub fn supports_page_visits(&self) -> bool {
        !self.deferred_monitoring
    }

    /// Page-batched pull: evaluates the next page (skipping corrupt
    /// ones) and hands its qualifying rows to `visit` as borrowed
    /// views. Returns `false` once the range is exhausted (monitors
    /// are finished at that point). Must not be interleaved with
    /// buffered `next()` deliveries, and is unavailable in deferred-
    /// monitoring mode (observation there is coupled to delivery
    /// order).
    pub fn next_page_rows(
        &mut self,
        ctx: &mut ExecContext,
        visit: &mut dyn FnMut(&PageRows<'_>, &mut ExecContext) -> Result<()>,
    ) -> Result<bool> {
        assert!(
            !self.deferred_monitoring,
            "page-batched pull is incompatible with deferred monitoring"
        );
        debug_assert!(self.buffer.is_empty(), "mixed page-batched and row pulls");
        loop {
            if self.finished {
                return Ok(false);
            }
            match self.eval_next_page(ctx)? {
                PageEval::Exhausted => {
                    self.finished = true;
                    if let Some(m) = &self.monitors {
                        m.borrow_mut().finish();
                    }
                    return Ok(false);
                }
                PageEval::Skipped => continue,
                PageEval::Ready { pid } => {
                    let storage = Arc::clone(&self.storage);
                    let page = storage.checked_page(PageId(pid), ctx.fault_attempt, false)?;
                    let rows = PageRows {
                        page,
                        layout: storage.layout(),
                        qualifying: &self.qualifying,
                        pid,
                    };
                    visit(&rows, ctx)?;
                    return Ok(true);
                }
            }
        }
    }
}

impl SeqScan {
    fn observe_deferred(&mut self, pid: u32, slot: u16, ctx: &mut ExecContext) -> Result<()> {
        let Some(m) = self.monitors.clone() else {
            return Ok(());
        };
        // Re-derive a borrowed view of the delivered row instead of
        // holding an owned clone per in-flight observation. The page was
        // checksum-verified when its rows were loaded and delivered rows
        // only come from intact pages, so this lookup (no re-verify, no
        // new I/O: the buffer-pool residency was charged at load) cannot
        // observe different bytes — and `DatumRef` hashing is defined to
        // agree with owned-`Datum` hashing, so sketch contents are
        // unchanged.
        let storage = Arc::clone(&self.storage);
        let page = storage.checked_page(PageId(pid), ctx.fault_attempt, false)?;
        let view = page.view(storage.layout(), SlotId(slot))?;
        let mut m = m.borrow_mut();
        if self.last_delivered_page != Some(pid) {
            m.check_deadline(ctx.elapsed_ms());
            m.start_page(pid);
            self.last_delivered_page = Some(pid);
        }
        // Deferred scans are predicate-free (asserted at construction):
        // no conjunct was evaluated, which is exactly an empty
        // short-circuit prefix that passed.
        m.observe_prefix_row(0, true, &view);
        ctx.pool.charge_monitor_ops(1);
        ctx.pool.charge_hashes(m.take_hash_ops());
        Ok(())
    }
}

impl Operator for SeqScan {
    fn schema(&self) -> &Schema {
        self.storage.schema()
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        loop {
            if let Some((row, pid, slot)) = self.buffer.pop_front() {
                if self.deferred_monitoring && self.monitors.is_some() {
                    // Observe the *previous* delivery now (the consumer
                    // has processed it, so a partial semi-join filter is
                    // complete for its key), and queue this one by
                    // provenance — no owned clone.
                    if let Some((prev_pid, prev_slot)) = self.pending_observation.take() {
                        self.observe_deferred(prev_pid, prev_slot, ctx)?;
                    }
                    self.pending_observation = Some((pid, slot));
                }
                return Ok(Some(row));
            }
            if self.finished {
                if let Some((prev_pid, prev_slot)) = self.pending_observation.take() {
                    self.observe_deferred(prev_pid, prev_slot, ctx)?;
                    if let Some(m) = &self.monitors {
                        m.borrow_mut().finish();
                    }
                }
                return Ok(None);
            }
            if !self.load_next_page(ctx)? {
                self.finished = true;
                if !self.deferred_monitoring {
                    if let Some(m) = &self.monitors {
                        m.borrow_mut().finish();
                    }
                }
            }
        }
    }

    fn next_count(&mut self, ctx: &mut ExecContext) -> Result<Option<u64>> {
        if self.deferred_monitoring {
            // Deferred observation is coupled to delivery order; keep
            // the row-at-a-time reference protocol.
            return Ok(self.next(ctx)?.map(|_| 1));
        }
        if !self.buffer.is_empty() {
            let n = self.buffer.len() as u64;
            self.buffer.clear();
            return Ok(Some(n));
        }
        loop {
            if self.finished {
                return Ok(None);
            }
            match self.eval_next_page(ctx)? {
                PageEval::Exhausted => {
                    self.finished = true;
                    if let Some(m) = &self.monitors {
                        m.borrow_mut().finish();
                    }
                    return Ok(None);
                }
                PageEval::Skipped => continue,
                PageEval::Ready { .. } => {
                    let n = bitmap::popcount(&self.qualifying);
                    if n > 0 {
                        return Ok(Some(n));
                    }
                }
            }
        }
    }

    fn as_seq_scan(&mut self) -> Option<&mut SeqScan> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AtomicPredicate, CompareOp};
    use crate::monitor::{ScanExprMonitor, ScanMonitorSet};
    use crate::op::{drain, run_count};
    use pf_common::{Column, DataType};
    use pf_feedback::FeedbackReport;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn make_table(n: i64) -> Arc<TableStorage> {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("val", DataType::Int),
            Column::new("pad", DataType::Str),
        ]);
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                Row::new(vec![
                    Datum::Int(i),
                    Datum::Int((i * 7919) % n), // scrambled
                    Datum::Str("x".repeat(40)),
                ])
            })
            .collect();
        Arc::new(TableStorage::bulk_load(schema, &rows, Some(0), 1024, 1.0).unwrap())
    }

    fn lt(storage: &TableStorage, col: &str, v: i64) -> AtomicPredicate {
        AtomicPredicate::new(storage.schema(), col, CompareOp::Lt, Datum::Int(v)).unwrap()
    }

    #[test]
    fn full_scan_returns_matching_rows() {
        let t = make_table(500);
        let pred = Conjunction::new(vec![lt(&t, "id", 100)]);
        let mut scan = SeqScan::full(Arc::clone(&t), TableId(0), pred, None);
        let mut ctx = ExecContext::new(1024);
        let rows = drain(&mut scan, &mut ctx).unwrap();
        assert_eq!(rows.len(), 100);
        // All pages read sequentially exactly once.
        let s = ctx.stats();
        assert_eq!(s.seq_physical_reads, u64::from(t.page_count()));
        assert_eq!(s.rand_physical_reads, 0);
        assert_eq!(s.rows_processed, 500);
        assert_eq!(s.pred_evals, 500);
    }

    #[test]
    fn clustered_range_scan_reads_fewer_pages() {
        let t = make_table(1_000);
        let pred = Conjunction::new(vec![lt(&t, "id", 50)]);
        let mut scan = SeqScan::clustered_range(
            Arc::clone(&t),
            TableId(0),
            None,
            Some(&Datum::Int(49)),
            pred,
            None,
        )
        .unwrap();
        let mut ctx = ExecContext::new(1024);
        assert_eq!(run_count(&mut scan, &mut ctx).unwrap(), 50);
        let s = ctx.stats();
        assert!(s.physical_reads() < u64::from(t.page_count()));
        assert_eq!(s.rand_physical_reads, 1, "seek positions once");
    }

    #[test]
    fn exact_monitoring_matches_brute_force() {
        let t = make_table(800);
        let pred = Conjunction::new(vec![lt(&t, "val", 200)]);
        let monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
            vec![ScanExprMonitor::atoms(&pred, vec![0], None)],
            1.0,
            3,
        )));
        let mut scan = SeqScan::full(
            Arc::clone(&t),
            TableId(0),
            pred.clone(),
            Some(Rc::clone(&monitors)),
        );
        let mut ctx = ExecContext::new(4096);
        let got = run_count(&mut scan, &mut ctx).unwrap();
        assert_eq!(got, 200);

        // Brute force DPC.
        let mut truth = 0u64;
        for p in 0..t.page_count() {
            let any = t
                .rows_on_page(PageId(p))
                .unwrap()
                .iter()
                .any(|r| r.get(1).as_int().unwrap() < 200);
            truth += u64::from(any);
        }
        let mut rep = FeedbackReport::new();
        monitors.borrow_mut().harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, truth as f64);
    }

    #[test]
    fn non_prefix_monitoring_charges_extra_evals() {
        let t = make_table(400);
        let pred = Conjunction::new(vec![lt(&t, "id", 10), lt(&t, "val", 200)]);
        // Monitor the non-prefix atom `val<200` at full sampling.
        let monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
            vec![ScanExprMonitor::atoms(&pred, vec![1], None)],
            1.0,
            3,
        )));
        let mut scan = SeqScan::full(
            Arc::clone(&t),
            TableId(0),
            pred.clone(),
            Some(Rc::clone(&monitors)),
        );
        let mut ctx = ExecContext::new(4096);
        run_count(&mut scan, &mut ctx).unwrap();
        let s = ctx.stats();
        // Most rows fail id<10 immediately; monitoring forced val<200.
        assert!(
            s.extra_pred_evals > 300,
            "extra evals {}",
            s.extra_pred_evals
        );

        // And the count is exact.
        let mut truth = 0u64;
        for p in 0..t.page_count() {
            let any = t
                .rows_on_page(PageId(p))
                .unwrap()
                .iter()
                .any(|r| r.get(1).as_int().unwrap() < 200);
            truth += u64::from(any);
        }
        let mut rep = FeedbackReport::new();
        monitors.borrow_mut().harvest("t", &mut rep);
        assert_eq!(rep.measurements[0].actual, truth as f64);
    }

    #[test]
    fn no_monitor_means_no_extra_evals() {
        let t = make_table(400);
        let pred = Conjunction::new(vec![lt(&t, "id", 10), lt(&t, "val", 200)]);
        let mut scan = SeqScan::full(Arc::clone(&t), TableId(0), pred, None);
        let mut ctx = ExecContext::new(4096);
        run_count(&mut scan, &mut ctx).unwrap();
        assert_eq!(ctx.stats().extra_pred_evals, 0);
    }

    #[test]
    fn sampled_monitoring_is_cheaper_and_close() {
        let t = make_table(2_000);
        let pred = Conjunction::new(vec![lt(&t, "id", 50), lt(&t, "val", 1_000)]);
        let run = |fraction: f64| {
            let monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
                vec![ScanExprMonitor::atoms(&pred, vec![1], None)],
                fraction,
                7,
            )));
            let mut scan = SeqScan::full(
                Arc::clone(&t),
                TableId(0),
                pred.clone(),
                Some(Rc::clone(&monitors)),
            );
            let mut ctx = ExecContext::new(8192);
            run_count(&mut scan, &mut ctx).unwrap();
            let mut rep = FeedbackReport::new();
            monitors.borrow_mut().harvest("t", &mut rep);
            (rep.measurements[0].actual, ctx.stats().extra_pred_evals)
        };
        let (exact, full_cost) = run(1.0);
        let (sampled, sampled_cost) = run(0.2);
        assert!(
            sampled_cost < full_cost / 2,
            "{sampled_cost} !< {full_cost}/2"
        );
        let err = (sampled - exact).abs() / exact.max(1.0);
        assert!(err < 0.25, "exact {exact} sampled {sampled}");
    }

    #[test]
    fn empty_predicate_scans_everything() {
        let t = make_table(100);
        let mut scan = SeqScan::full(Arc::clone(&t), TableId(0), Conjunction::always_true(), None);
        let mut ctx = ExecContext::new(1024);
        assert_eq!(run_count(&mut scan, &mut ctx).unwrap(), 100);
        assert_eq!(ctx.stats().pred_evals, 0);
    }
}
