//! Radix-partitioned open-addressing build table for vectorized hash
//! joins.
//!
//! Replaces the per-row `HashMap<Datum, Vec<Row>>` build: keys are
//! hashed once with the seeded [`hash_datum_ref`], the hash routes the
//! entry to a partition (high bits) and to a slot inside the
//! partition's open-addressing directory (low bits), and build rows are
//! chained off their entry in insertion order. Equality between a
//! stored key and a probe key is plain `Datum` equality (`NaN != NaN`,
//! `-0.0` and `0.0` hash apart), so match sets — including the
//! degenerate float cases — are exactly those of the `HashMap` path.
//!
//! The same structure backs the morsel driver's partition phase: in
//! count mode no rows are stored, only per-key multiplicities, and the
//! table is `Sync` so probe morsels share one reference.

use pf_common::hash::hash_datum_ref;
use pf_common::{Datum, DatumRef, Row};

/// A no-row sentinel for chain heads in count mode.
const NIL: u32 = u32::MAX;

/// Partition count for an expected number of build rows: one partition
/// per ~4k keys, clamped to `[1, 256]` (always a power of two). The
/// `PF_JOIN_PARTITIONS` knob overrides the estimate-derived count; the
/// layout is invisible in results, so the knob is purely a tuning and
/// triage lever.
pub fn join_partitions(est_build_rows: f64) -> usize {
    if let Ok(v) = std::env::var("PF_JOIN_PARTITIONS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.clamp(1, 256).next_power_of_two();
        }
    }
    let target = (est_build_rows.max(0.0) / 4096.0).ceil() as usize;
    target.clamp(1, 256).next_power_of_two()
}

#[derive(Debug)]
struct Entry {
    /// Full 64-bit key hash; compared before the key itself so probes
    /// touch `Datum`s only on hash agreement.
    hash: u64,
    key: Datum,
    /// Number of build rows with this key.
    count: u64,
    /// First/last index into the shared row-chain arrays (`NIL` in
    /// count mode).
    head: u32,
    tail: u32,
}

#[derive(Debug, Default)]
struct Partition {
    /// Open-addressing directory: `entry_index + 1`, `0` = empty.
    slots: Vec<u32>,
    entries: Vec<Entry>,
}

impl Partition {
    /// Doubles the slot directory and reinserts entry indices by their
    /// stored hashes.
    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        self.slots.clear();
        self.slots.resize(cap, 0);
        let mask = cap - 1;
        for (i, e) in self.entries.iter().enumerate() {
            let mut s = (e.hash as usize) & mask;
            while self.slots[s] != 0 {
                s = (s + 1) & mask;
            }
            self.slots[s] = (i + 1) as u32;
        }
    }
}

/// The seeded, radix-partitioned build side of a hash join.
#[derive(Debug)]
pub struct RadixTable {
    seed: u64,
    /// `partitions.len() - 1`; partition of hash `h` is
    /// `(h >> 32) & part_mask`, disjoint from the low slot bits.
    part_mask: u64,
    parts: Vec<Partition>,
    /// Row storage shared across partitions; `next[i]` chains rows of
    /// one key in insertion order.
    rows: Vec<Row>,
    next: Vec<u32>,
    distinct: usize,
}

impl RadixTable {
    /// An empty table with `partitions` partitions (rounded up to a
    /// power of two) hashing with `seed`.
    pub fn new(partitions: usize, seed: u64) -> Self {
        let n = partitions.clamp(1, 256).next_power_of_two();
        RadixTable {
            seed,
            part_mask: (n - 1) as u64,
            parts: (0..n).map(|_| Partition::default()).collect(),
            rows: Vec::new(),
            next: Vec::new(),
            distinct: 0,
        }
    }

    /// Number of distinct keys stored.
    pub fn distinct_keys(&self) -> usize {
        self.distinct
    }

    /// Total number of inserted build rows.
    pub fn total_rows(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.entries.iter().map(|e| e.count).sum::<u64>())
            .sum()
    }

    /// Inserts one build key, optionally chaining its materialized row
    /// (row mode). The key is cloned to an owned `Datum` only on its
    /// first occurrence.
    pub fn insert(&mut self, key: DatumRef<'_>, row: Option<Row>) {
        let h = hash_datum_ref(key, self.seed);
        let row_idx = match row {
            Some(r) => {
                let i = self.rows.len() as u32;
                self.rows.push(r);
                self.next.push(NIL);
                i
            }
            None => NIL,
        };
        let part = &mut self.parts[((h >> 32) & self.part_mask) as usize];
        if part.entries.len() * 8 >= part.slots.len() * 7 {
            part.grow();
        }
        let mask = part.slots.len() - 1;
        let mut s = (h as usize) & mask;
        loop {
            match part.slots[s] {
                0 => {
                    part.entries.push(Entry {
                        hash: h,
                        key: key.to_datum(),
                        count: 1,
                        head: row_idx,
                        tail: row_idx,
                    });
                    part.slots[s] = part.entries.len() as u32;
                    self.distinct += 1;
                    return;
                }
                e => {
                    let entry = &mut part.entries[(e - 1) as usize];
                    if entry.hash == h && DatumRef::from(&entry.key) == key {
                        entry.count += 1;
                        if row_idx != NIL {
                            if entry.tail == NIL {
                                entry.head = row_idx;
                            } else {
                                self.next[entry.tail as usize] = row_idx;
                            }
                            entry.tail = row_idx;
                        }
                        return;
                    }
                    s = (s + 1) & mask;
                }
            }
        }
    }

    /// Inserts an owned key in count mode (the morsel partition phase —
    /// keys arrive already cloned out of build morsels, so this moves
    /// rather than re-clones).
    pub fn insert_owned(&mut self, key: Datum) {
        let h = hash_datum_ref(DatumRef::from(&key), self.seed);
        let part = &mut self.parts[((h >> 32) & self.part_mask) as usize];
        if part.entries.len() * 8 >= part.slots.len() * 7 {
            part.grow();
        }
        let mask = part.slots.len() - 1;
        let mut s = (h as usize) & mask;
        loop {
            match part.slots[s] {
                0 => {
                    part.entries.push(Entry {
                        hash: h,
                        key,
                        count: 1,
                        head: NIL,
                        tail: NIL,
                    });
                    part.slots[s] = part.entries.len() as u32;
                    self.distinct += 1;
                    return;
                }
                e => {
                    // Same hash-then-`Datum`-equality rule as `insert`
                    // (NaN keys each stay their own entry).
                    let entry = &mut part.entries[(e - 1) as usize];
                    if entry.hash == h && entry.key == key {
                        entry.count += 1;
                        return;
                    }
                    s = (s + 1) & mask;
                }
            }
        }
    }

    fn find(&self, key: DatumRef<'_>) -> Option<&Entry> {
        let h = hash_datum_ref(key, self.seed);
        let part = &self.parts[((h >> 32) & self.part_mask) as usize];
        if part.slots.is_empty() {
            return None;
        }
        let mask = part.slots.len() - 1;
        let mut s = (h as usize) & mask;
        loop {
            match part.slots[s] {
                0 => return None,
                e => {
                    let entry = &part.entries[(e - 1) as usize];
                    if entry.hash == h && DatumRef::from(&entry.key) == key {
                        return Some(entry);
                    }
                    s = (s + 1) & mask;
                }
            }
        }
    }

    /// Number of build rows matching `key` (0 when absent).
    pub fn matches(&self, key: DatumRef<'_>) -> u64 {
        self.find(key).map_or(0, |e| e.count)
    }

    /// The build rows matching `key`, in insertion order (row mode).
    pub fn rows_for(&self, key: DatumRef<'_>) -> RowChain<'_> {
        RowChain {
            table: self,
            cursor: self.find(key).map_or(NIL, |e| e.head),
        }
    }
}

/// Iterator over one key's chained build rows in insertion order.
pub struct RowChain<'a> {
    table: &'a RadixTable,
    cursor: u32,
}

impl<'a> Iterator for RowChain<'a> {
    type Item = &'a Row;

    fn next(&mut self) -> Option<&'a Row> {
        if self.cursor == NIL {
            return None;
        }
        let i = self.cursor as usize;
        self.cursor = self.table.next[i];
        Some(&self.table.rows[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicities_match_hashmap_semantics() {
        let mut t = RadixTable::new(4, 0xABCD);
        for i in 0..1_000i64 {
            let d = Datum::Int(i % 37);
            t.insert(DatumRef::from(&d), None);
        }
        assert_eq!(t.distinct_keys(), 37);
        assert_eq!(t.total_rows(), 1_000);
        let k = Datum::Int(5);
        // 1000 rows over 37 keys: keys 0..=1 get 28, the rest 27.
        assert_eq!(t.matches(DatumRef::from(&k)), 28);
        let missing = Datum::Int(99);
        assert_eq!(t.matches(DatumRef::from(&missing)), 0);
    }

    #[test]
    fn nan_keys_never_match_like_derived_eq() {
        // `Datum::Float(NaN) != Datum::Float(NaN)` under derived
        // `PartialEq`, so the HashMap path files each NaN build row as
        // its own unreachable entry; the radix table must agree.
        let mut t = RadixTable::new(1, 7);
        let nan = Datum::Float(f64::NAN);
        t.insert(DatumRef::from(&nan), None);
        t.insert(DatumRef::from(&nan), None);
        assert_eq!(t.distinct_keys(), 2, "each NaN is its own entry");
        assert_eq!(t.matches(DatumRef::from(&nan)), 0, "NaN probes miss");
    }

    #[test]
    fn signed_zero_hashes_apart() {
        let mut t = RadixTable::new(1, 7);
        let neg = Datum::Float(-0.0);
        t.insert(DatumRef::from(&neg), None);
        let pos = Datum::Float(0.0);
        // `to_bits` hashing puts -0.0 and 0.0 in different buckets, so
        // (exactly like the HashMap) the probe never reaches the entry.
        assert_eq!(t.matches(DatumRef::from(&pos)), 0);
        assert_eq!(t.matches(DatumRef::from(&neg)), 1);
    }

    #[test]
    fn row_chains_preserve_insertion_order() {
        let mut t = RadixTable::new(2, 3);
        let k = Datum::Int(1);
        for i in 0..5i64 {
            t.insert(
                DatumRef::from(&k),
                Some(Row::new(vec![Datum::Int(1), Datum::Int(i)])),
            );
        }
        let tags: Vec<i64> = t
            .rows_for(DatumRef::from(&k))
            .map(|r| r.get(1).as_int().expect("int column"))
            .collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn growth_keeps_all_entries_reachable() {
        let mut t = RadixTable::new(1, 99);
        for i in 0..10_000i64 {
            let d = Datum::Int(i);
            t.insert(DatumRef::from(&d), None);
        }
        assert_eq!(t.distinct_keys(), 10_000);
        for i in (0..10_000i64).step_by(97) {
            let d = Datum::Int(i);
            assert_eq!(t.matches(DatumRef::from(&d)), 1, "key {i}");
        }
    }
}
