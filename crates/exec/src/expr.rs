//! Predicates: atomic comparisons and conjunctions with short-circuiting.
//!
//! The paper (Section III) assumes predicates are conjunctions of atomic
//! predicates evaluated left-to-right with *short-circuiting*: once a
//! conjunct fails, the rest are skipped. That optimization is exactly
//! what makes non-prefix DPC expressions unobservable for free, and what
//! `DPSample` selectively disables. [`Conjunction::eval_short_circuit`]
//! and [`Conjunction::eval_all`] model the two regimes and report how
//! many conjuncts were actually evaluated so the executor can charge the
//! difference to the monitoring overhead (Fig 9).

use pf_common::{Datum, DatumAccess, Error, Result, Schema};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
}

impl CompareOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
            CompareOp::Ne => ord != Ordering::Equal,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Ne => "<>",
        };
        f.write_str(s)
    }
}

/// `column <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicPredicate {
    /// Column ordinal in the operator's input schema.
    pub column: usize,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal compared against.
    pub value: Datum,
    /// Column name, kept for canonical expression text.
    pub column_name: String,
}

impl AtomicPredicate {
    /// Builds and type-checks an atom against `schema`.
    pub fn new(schema: &Schema, column: &str, op: CompareOp, value: Datum) -> Result<Self> {
        let idx = schema.index_of(column)?;
        let ty = schema.column(idx).ty;
        if value.data_type() != ty {
            return Err(Error::TypeMismatch {
                expected: match ty {
                    pf_common::DataType::Int => "Int",
                    pf_common::DataType::Float => "Float",
                    pf_common::DataType::Str => "Str",
                    pf_common::DataType::Date => "Date",
                },
                found: value.type_name(),
            });
        }
        Ok(AtomicPredicate {
            column: idx,
            op,
            value,
            column_name: column.to_string(),
        })
    }

    /// Evaluates the atom on any row representation — an owned
    /// [`pf_common::Row`] or a borrowed page view — without
    /// materializing a [`Datum`].
    #[inline]
    pub fn eval<R: DatumAccess + ?Sized>(&self, row: &R) -> bool {
        let ord = row
            .datum_ref(self.column)
            .cmp_datum(&self.value)
            .expect("atom was type-checked at construction");
        self.op.matches(ord)
    }
}

impl fmt::Display for AtomicPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.column_name, self.op, self.value)
    }
}

/// A left-to-right conjunction of atoms.
///
/// Canonical expression text (the monitor-registry key) is rendered once
/// at construction; `atoms` must not be mutated afterwards or the cached
/// text goes stale — every constructor in the workspace goes through
/// [`Conjunction::new`] / [`Conjunction::always_true`].
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunction {
    /// The conjuncts, in evaluation order.
    pub atoms: Vec<AtomicPredicate>,
    /// Cached canonical text of the whole conjunction.
    key: String,
    /// Cached canonical text of each atom (for [`Conjunction::key_of`]).
    atom_texts: Vec<String>,
}

impl Default for Conjunction {
    fn default() -> Self {
        Conjunction::always_true()
    }
}

impl Conjunction {
    /// An always-true predicate.
    pub fn always_true() -> Self {
        Conjunction::new(Vec::new())
    }

    /// Builds a conjunction from atoms.
    pub fn new(atoms: Vec<AtomicPredicate>) -> Self {
        let atom_texts: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
        let key = if atom_texts.is_empty() {
            "TRUE".to_string()
        } else {
            atom_texts.join(" AND ")
        };
        Conjunction {
            atoms,
            key,
            atom_texts,
        }
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether there are no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates with short-circuiting, on any row representation.
    ///
    /// Returns `(passed, evaluated)`: the overall result and how many
    /// conjuncts were evaluated (for CPU accounting). On failure at
    /// conjunct `j`, conjuncts `0..j` are known true, `j` known false,
    /// and the rest unknown.
    #[inline]
    pub fn eval_short_circuit<R: DatumAccess + ?Sized>(&self, row: &R) -> (bool, usize) {
        for (i, atom) in self.atoms.iter().enumerate() {
            if !atom.eval(row) {
                return (false, i + 1);
            }
        }
        (true, self.atoms.len())
    }

    /// Evaluates *every* conjunct (short-circuiting off), writing each
    /// result into `results` (resized to `len()`); returns overall truth.
    #[inline]
    pub fn eval_all<R: DatumAccess + ?Sized>(&self, row: &R, results: &mut Vec<bool>) -> bool {
        results.clear();
        let mut all = true;
        for atom in &self.atoms {
            let r = atom.eval(row);
            results.push(r);
            all &= r;
        }
        all
    }

    /// Canonical text, e.g. `C2<5000 AND state='CA'`; `TRUE` if empty.
    /// Rendered once at construction — this is just a borrow.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Canonical text of the prefix/subset of atoms at `indices`,
    /// joined from per-atom text cached at construction.
    pub fn key_of(&self, indices: &[usize]) -> String {
        if indices.is_empty() {
            return "TRUE".to_string();
        }
        let mut out =
            String::with_capacity(indices.iter().map(|&i| self.atom_texts[i].len() + 5).sum());
        for (n, &i) in indices.iter().enumerate() {
            if n > 0 {
                out.push_str(" AND ");
            }
            out.push_str(&self.atom_texts[i]);
        }
        out
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// A comparison literal pre-decoded to the column's fixed-width wire
/// type.
#[derive(Debug, Clone, Copy)]
enum KernelValue {
    Int(i64),
    Float(f64),
    Date(i32),
}

/// One atom of a [`PageKernel`]: compare the fixed-prefix field at
/// `offset` bytes into each row payload against `value`.
#[derive(Debug, Clone)]
struct KernelAtom {
    offset: usize,
    op: CompareOp,
    value: KernelValue,
}

/// A conjunction compiled for page-at-a-time evaluation.
///
/// Every atom's column must live in the row layout's fixed-width prefix,
/// so its bytes sit at a schema-constant offset from the row start and
/// can be read straight out of the page buffer — no `RowView`
/// construction (and no per-row validation walk) for rows that are only
/// observed, never delivered. Comparison semantics are exactly those of
/// [`AtomicPredicate::eval`]: `i64`/`i32` ordering for `Int`/`Date`,
/// IEEE `total_cmp` for `Float` (matching `DatumRef::cmp_datum`).
#[derive(Debug, Clone)]
pub struct PageKernel {
    atoms: Vec<KernelAtom>,
    span: usize,
}

impl Conjunction {
    /// Compiles this conjunction against `layout` for page-at-a-time
    /// evaluation, or `None` if any atom's column falls outside the
    /// fixed-width prefix (e.g. `Str` columns, or columns after the
    /// first `Str`) — the scan then falls back to row-at-a-time views.
    pub fn compile_page_kernel(&self, layout: &pf_storage::RowLayout) -> Option<PageKernel> {
        let mut atoms = Vec::with_capacity(self.atoms.len());
        let mut span = 0usize;
        for a in &self.atoms {
            let (offset, _ty) = layout.fixed_col(a.column)?;
            let (value, width) = match &a.value {
                Datum::Int(v) => (KernelValue::Int(*v), 8),
                Datum::Float(v) => (KernelValue::Float(*v), 8),
                Datum::Date(v) => (KernelValue::Date(*v), 4),
                Datum::Str(_) => return None,
            };
            span = span.max(offset + width);
            atoms.push(KernelAtom {
                offset,
                op: a.op,
                value,
            });
        }
        Some(PageKernel { atoms, span })
    }
}

impl PageKernel {
    /// Bytes the kernel reads from each row's payload start — the bound
    /// the page must guarantee per slot (see `Page::slot_offsets`).
    pub fn span(&self) -> usize {
        self.span
    }

    /// Evaluates atom `idx` over a page: `bytes` is the raw page image,
    /// `offs[s]` each slot's payload offset, `active` a bitmap of slots
    /// worth evaluating, `out` the result bitmap (one bit per slot, same
    /// word count as `active`).
    ///
    /// Whole words of `active` that are zero are skipped and their `out`
    /// words left zero — the word-granular analogue of short-circuiting.
    /// Within a nonzero word every slot is evaluated; bits of `out` for
    /// inactive slots may therefore be set, and callers must mask with
    /// the prefix bitmap (AND) before interpreting them.
    pub fn eval_atom(
        &self,
        idx: usize,
        bytes: &[u8],
        offs: &[u32],
        active: &[u64],
        out: &mut [u64],
    ) {
        let atom = &self.atoms[idx];
        match atom.value {
            KernelValue::Int(lit) => {
                eval_fixed::<8>(bytes, offs, atom.offset, active, out, |raw| {
                    atom.op.matches(i64::from_le_bytes(raw).cmp(&lit))
                })
            }
            KernelValue::Float(lit) => {
                eval_fixed::<8>(bytes, offs, atom.offset, active, out, |raw| {
                    atom.op
                        .matches(f64::from_bits(u64::from_le_bytes(raw)).total_cmp(&lit))
                });
            }
            KernelValue::Date(lit) => {
                eval_fixed::<4>(bytes, offs, atom.offset, active, out, |raw| {
                    atom.op.matches(i32::from_le_bytes(raw).cmp(&lit))
                })
            }
        }
    }
}

/// Shared fixed-width comparison loop: reads `W` bytes at `col_off` into
/// each active slot's payload and ORs `pred`'s verdicts into `out`.
#[inline]
fn eval_fixed<const W: usize>(
    bytes: &[u8],
    offs: &[u32],
    col_off: usize,
    active: &[u64],
    out: &mut [u64],
    pred: impl Fn([u8; W]) -> bool,
) {
    for (w, out_word) in out.iter_mut().enumerate() {
        if active[w] == 0 {
            continue;
        }
        let base = w * 64;
        let end = (base + 64).min(offs.len());
        let mut word = 0u64;
        for (bit, &off) in offs[base..end].iter().enumerate() {
            let start = off as usize + col_off;
            let raw: [u8; W] = bytes[start..start + W]
                .try_into()
                .expect("slot_offsets bounds-checked the kernel span");
            word |= u64::from(pred(raw)) << bit;
        }
        *out_word = word;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_common::{Column, DataType, Row};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("ship", DataType::Date),
            Column::new("state", DataType::Str),
        ])
    }

    fn row(id: i64, ship: i32, state: &str) -> Row {
        Row::new(vec![
            Datum::Int(id),
            Datum::Date(ship),
            Datum::Str(state.into()),
        ])
    }

    #[test]
    fn atom_type_checking() {
        let s = schema();
        assert!(AtomicPredicate::new(&s, "id", CompareOp::Lt, Datum::Int(5)).is_ok());
        assert!(AtomicPredicate::new(&s, "id", CompareOp::Lt, Datum::Str("x".into())).is_err());
        assert!(AtomicPredicate::new(&s, "missing", CompareOp::Eq, Datum::Int(1)).is_err());
    }

    #[test]
    fn all_comparison_ops() {
        let s = schema();
        let r = row(5, 0, "CA");
        let cases = [
            (CompareOp::Eq, 5, true),
            (CompareOp::Eq, 6, false),
            (CompareOp::Lt, 6, true),
            (CompareOp::Lt, 5, false),
            (CompareOp::Le, 5, true),
            (CompareOp::Gt, 4, true),
            (CompareOp::Gt, 5, false),
            (CompareOp::Ge, 5, true),
            (CompareOp::Ne, 4, true),
            (CompareOp::Ne, 5, false),
        ];
        for (op, v, expect) in cases {
            let a = AtomicPredicate::new(&s, "id", op, Datum::Int(v)).unwrap();
            assert_eq!(a.eval(&r), expect, "id {op} {v}");
        }
    }

    #[test]
    fn short_circuit_counts_evaluations() {
        let s = schema();
        let conj = Conjunction::new(vec![
            AtomicPredicate::new(&s, "ship", CompareOp::Eq, Datum::Date(100)).unwrap(),
            AtomicPredicate::new(&s, "state", CompareOp::Eq, Datum::Str("CA".into())).unwrap(),
        ]);
        // First conjunct fails: one evaluation.
        assert_eq!(conj.eval_short_circuit(&row(1, 99, "CA")), (false, 1));
        // First passes, second fails: two evaluations.
        assert_eq!(conj.eval_short_circuit(&row(1, 100, "WA")), (false, 2));
        // Both pass.
        assert_eq!(conj.eval_short_circuit(&row(1, 100, "CA")), (true, 2));
    }

    #[test]
    fn eval_all_reports_every_atom() {
        let s = schema();
        let conj = Conjunction::new(vec![
            AtomicPredicate::new(&s, "ship", CompareOp::Eq, Datum::Date(100)).unwrap(),
            AtomicPredicate::new(&s, "state", CompareOp::Eq, Datum::Str("CA".into())).unwrap(),
        ]);
        let mut res = Vec::new();
        // Even with the first failing, the second is evaluated.
        assert!(!conj.eval_all(&row(1, 99, "CA"), &mut res));
        assert_eq!(res, vec![false, true]);
        assert!(conj.eval_all(&row(1, 100, "CA"), &mut res));
        assert_eq!(res, vec![true, true]);
    }

    #[test]
    fn empty_conjunction_is_true() {
        let conj = Conjunction::always_true();
        assert_eq!(conj.eval_short_circuit(&row(1, 1, "x")), (true, 0));
        assert_eq!(conj.key(), "TRUE");
    }

    #[test]
    fn canonical_keys() {
        let s = schema();
        let conj = Conjunction::new(vec![
            AtomicPredicate::new(&s, "ship", CompareOp::Lt, Datum::Date(100)).unwrap(),
            AtomicPredicate::new(&s, "state", CompareOp::Eq, Datum::Str("CA".into())).unwrap(),
        ]);
        assert_eq!(conj.key(), "ship<date(100) AND state='CA'");
        assert_eq!(conj.key_of(&[1]), "state='CA'");
        assert_eq!(conj.key_of(&[]), "TRUE");
    }
}
