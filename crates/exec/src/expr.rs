//! Predicates: atomic comparisons and conjunctions with short-circuiting.
//!
//! The paper (Section III) assumes predicates are conjunctions of atomic
//! predicates evaluated left-to-right with *short-circuiting*: once a
//! conjunct fails, the rest are skipped. That optimization is exactly
//! what makes non-prefix DPC expressions unobservable for free, and what
//! `DPSample` selectively disables. [`Conjunction::eval_short_circuit`]
//! and [`Conjunction::eval_all`] model the two regimes and report how
//! many conjuncts were actually evaluated so the executor can charge the
//! difference to the monitoring overhead (Fig 9).

use pf_common::{Datum, DatumAccess, Error, Result, Schema};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of an atomic predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Ne,
}

impl CompareOp {
    fn matches(self, ord: Ordering) -> bool {
        match self {
            CompareOp::Eq => ord == Ordering::Equal,
            CompareOp::Lt => ord == Ordering::Less,
            CompareOp::Le => ord != Ordering::Greater,
            CompareOp::Gt => ord == Ordering::Greater,
            CompareOp::Ge => ord != Ordering::Less,
            CompareOp::Ne => ord != Ordering::Equal,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Ne => "<>",
        };
        f.write_str(s)
    }
}

/// `column <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicPredicate {
    /// Column ordinal in the operator's input schema.
    pub column: usize,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal compared against.
    pub value: Datum,
    /// Column name, kept for canonical expression text.
    pub column_name: String,
}

impl AtomicPredicate {
    /// Builds and type-checks an atom against `schema`.
    pub fn new(schema: &Schema, column: &str, op: CompareOp, value: Datum) -> Result<Self> {
        let idx = schema.index_of(column)?;
        let ty = schema.column(idx).ty;
        if value.data_type() != ty {
            return Err(Error::TypeMismatch {
                expected: match ty {
                    pf_common::DataType::Int => "Int",
                    pf_common::DataType::Float => "Float",
                    pf_common::DataType::Str => "Str",
                    pf_common::DataType::Date => "Date",
                },
                found: value.type_name(),
            });
        }
        Ok(AtomicPredicate {
            column: idx,
            op,
            value,
            column_name: column.to_string(),
        })
    }

    /// Evaluates the atom on any row representation — an owned
    /// [`pf_common::Row`] or a borrowed page view — without
    /// materializing a [`Datum`].
    #[inline]
    pub fn eval<R: DatumAccess + ?Sized>(&self, row: &R) -> bool {
        let ord = row
            .datum_ref(self.column)
            .cmp_datum(&self.value)
            .expect("atom was type-checked at construction");
        self.op.matches(ord)
    }
}

impl fmt::Display for AtomicPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.column_name, self.op, self.value)
    }
}

/// A left-to-right conjunction of atoms.
///
/// Canonical expression text (the monitor-registry key) is rendered once
/// at construction; `atoms` must not be mutated afterwards or the cached
/// text goes stale — every constructor in the workspace goes through
/// [`Conjunction::new`] / [`Conjunction::always_true`].
#[derive(Debug, Clone, PartialEq)]
pub struct Conjunction {
    /// The conjuncts, in evaluation order.
    pub atoms: Vec<AtomicPredicate>,
    /// Cached canonical text of the whole conjunction.
    key: String,
    /// Cached canonical text of each atom (for [`Conjunction::key_of`]).
    atom_texts: Vec<String>,
}

impl Default for Conjunction {
    fn default() -> Self {
        Conjunction::always_true()
    }
}

impl Conjunction {
    /// An always-true predicate.
    pub fn always_true() -> Self {
        Conjunction::new(Vec::new())
    }

    /// Builds a conjunction from atoms.
    pub fn new(atoms: Vec<AtomicPredicate>) -> Self {
        let atom_texts: Vec<String> = atoms.iter().map(|a| a.to_string()).collect();
        let key = if atom_texts.is_empty() {
            "TRUE".to_string()
        } else {
            atom_texts.join(" AND ")
        };
        Conjunction {
            atoms,
            key,
            atom_texts,
        }
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Whether there are no conjuncts.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates with short-circuiting, on any row representation.
    ///
    /// Returns `(passed, evaluated)`: the overall result and how many
    /// conjuncts were evaluated (for CPU accounting). On failure at
    /// conjunct `j`, conjuncts `0..j` are known true, `j` known false,
    /// and the rest unknown.
    #[inline]
    pub fn eval_short_circuit<R: DatumAccess + ?Sized>(&self, row: &R) -> (bool, usize) {
        for (i, atom) in self.atoms.iter().enumerate() {
            if !atom.eval(row) {
                return (false, i + 1);
            }
        }
        (true, self.atoms.len())
    }

    /// Evaluates *every* conjunct (short-circuiting off), writing each
    /// result into `results` (resized to `len()`); returns overall truth.
    #[inline]
    pub fn eval_all<R: DatumAccess + ?Sized>(&self, row: &R, results: &mut Vec<bool>) -> bool {
        results.clear();
        let mut all = true;
        for atom in &self.atoms {
            let r = atom.eval(row);
            results.push(r);
            all &= r;
        }
        all
    }

    /// Canonical text, e.g. `C2<5000 AND state='CA'`; `TRUE` if empty.
    /// Rendered once at construction — this is just a borrow.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Canonical text of the prefix/subset of atoms at `indices`,
    /// joined from per-atom text cached at construction.
    pub fn key_of(&self, indices: &[usize]) -> String {
        if indices.is_empty() {
            return "TRUE".to_string();
        }
        let mut out =
            String::with_capacity(indices.iter().map(|&i| self.atom_texts[i].len() + 5).sum());
        for (n, &i) in indices.iter().enumerate() {
            if n > 0 {
                out.push_str(" AND ");
            }
            out.push_str(&self.atom_texts[i]);
        }
        out
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_common::{Column, DataType, Row};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("ship", DataType::Date),
            Column::new("state", DataType::Str),
        ])
    }

    fn row(id: i64, ship: i32, state: &str) -> Row {
        Row::new(vec![
            Datum::Int(id),
            Datum::Date(ship),
            Datum::Str(state.into()),
        ])
    }

    #[test]
    fn atom_type_checking() {
        let s = schema();
        assert!(AtomicPredicate::new(&s, "id", CompareOp::Lt, Datum::Int(5)).is_ok());
        assert!(AtomicPredicate::new(&s, "id", CompareOp::Lt, Datum::Str("x".into())).is_err());
        assert!(AtomicPredicate::new(&s, "missing", CompareOp::Eq, Datum::Int(1)).is_err());
    }

    #[test]
    fn all_comparison_ops() {
        let s = schema();
        let r = row(5, 0, "CA");
        let cases = [
            (CompareOp::Eq, 5, true),
            (CompareOp::Eq, 6, false),
            (CompareOp::Lt, 6, true),
            (CompareOp::Lt, 5, false),
            (CompareOp::Le, 5, true),
            (CompareOp::Gt, 4, true),
            (CompareOp::Gt, 5, false),
            (CompareOp::Ge, 5, true),
            (CompareOp::Ne, 4, true),
            (CompareOp::Ne, 5, false),
        ];
        for (op, v, expect) in cases {
            let a = AtomicPredicate::new(&s, "id", op, Datum::Int(v)).unwrap();
            assert_eq!(a.eval(&r), expect, "id {op} {v}");
        }
    }

    #[test]
    fn short_circuit_counts_evaluations() {
        let s = schema();
        let conj = Conjunction::new(vec![
            AtomicPredicate::new(&s, "ship", CompareOp::Eq, Datum::Date(100)).unwrap(),
            AtomicPredicate::new(&s, "state", CompareOp::Eq, Datum::Str("CA".into())).unwrap(),
        ]);
        // First conjunct fails: one evaluation.
        assert_eq!(conj.eval_short_circuit(&row(1, 99, "CA")), (false, 1));
        // First passes, second fails: two evaluations.
        assert_eq!(conj.eval_short_circuit(&row(1, 100, "WA")), (false, 2));
        // Both pass.
        assert_eq!(conj.eval_short_circuit(&row(1, 100, "CA")), (true, 2));
    }

    #[test]
    fn eval_all_reports_every_atom() {
        let s = schema();
        let conj = Conjunction::new(vec![
            AtomicPredicate::new(&s, "ship", CompareOp::Eq, Datum::Date(100)).unwrap(),
            AtomicPredicate::new(&s, "state", CompareOp::Eq, Datum::Str("CA".into())).unwrap(),
        ]);
        let mut res = Vec::new();
        // Even with the first failing, the second is evaluated.
        assert!(!conj.eval_all(&row(1, 99, "CA"), &mut res));
        assert_eq!(res, vec![false, true]);
        assert!(conj.eval_all(&row(1, 100, "CA"), &mut res));
        assert_eq!(res, vec![true, true]);
    }

    #[test]
    fn empty_conjunction_is_true() {
        let conj = Conjunction::always_true();
        assert_eq!(conj.eval_short_circuit(&row(1, 1, "x")), (true, 0));
        assert_eq!(conj.key(), "TRUE");
    }

    #[test]
    fn canonical_keys() {
        let s = schema();
        let conj = Conjunction::new(vec![
            AtomicPredicate::new(&s, "ship", CompareOp::Lt, Datum::Date(100)).unwrap(),
            AtomicPredicate::new(&s, "state", CompareOp::Eq, Datum::Str("CA".into())).unwrap(),
        ]);
        assert_eq!(conj.key(), "ship<date(100) AND state='CA'");
        assert_eq!(conj.key_of(&[1]), "state='CA'");
        assert_eq!(conj.key_of(&[]), "TRUE");
    }
}
