//! RE-side aggregation: `COUNT(column)`.
//!
//! The paper's workloads are `SELECT count(padding) FROM ...` — an
//! aggregate chosen so the query must *fetch the row* (the padding
//! column is in no index), forcing the access-method decision the
//! experiments study.

use crate::context::ExecContext;
use crate::op::Operator;
use pf_common::{Column, DataType, Datum, Result, Row, Schema};

/// Counts input rows, emitting a single `(count: Int)` row.
pub struct CountAgg {
    input: Box<dyn Operator>,
    schema: Schema,
    done: bool,
}

impl CountAgg {
    /// Builds a count aggregate.
    pub fn new(input: Box<dyn Operator>) -> Self {
        CountAgg {
            input,
            schema: Schema::new(vec![Column::new("count", DataType::Int)]),
            done: false,
        }
    }
}

impl Operator for CountAgg {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        // Counting pull: batch-capable inputs (scans, vectorized joins)
        // deliver per-page counts without materializing a single row;
        // everything else degrades to the per-row default.
        let mut n: u64 = 0;
        while let Some(k) = self.input.next_count(ctx)? {
            n += k;
        }
        self.done = true;
        Ok(Some(Row::new(vec![Datum::Int(n as i64)])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AtomicPredicate, CompareOp, Conjunction};
    use crate::scan::SeqScan;
    use pf_common::TableId;
    use pf_storage::TableStorage;
    use std::sync::Arc;

    #[test]
    fn counts_filtered_rows() {
        let schema = Schema::new(vec![Column::new("id", DataType::Int)]);
        let rows: Vec<Row> = (0..250).map(|i| Row::new(vec![Datum::Int(i)])).collect();
        let t = Arc::new(TableStorage::bulk_load(schema, &rows, Some(0), 512, 1.0).unwrap());
        let pred = Conjunction::new(vec![AtomicPredicate::new(
            t.schema(),
            "id",
            CompareOp::Lt,
            Datum::Int(42),
        )
        .unwrap()]);
        let scan = SeqScan::full(Arc::clone(&t), TableId(0), pred, None);
        let mut agg = CountAgg::new(Box::new(scan));
        let mut ctx = ExecContext::new(1024);
        let row = agg.next(&mut ctx).unwrap().unwrap();
        assert_eq!(row.get(0), &Datum::Int(42));
        assert!(agg.next(&mut ctx).unwrap().is_none());
    }
}
