//! End-to-end corruption tolerance: a full monitored workload over a
//! database carrying ~1% deterministic page damage must complete with
//! zero panics, report exactly which queries were degraded, and leave
//! every *non-degraded* query's feedback sketch identical to the
//! fault-free run's — the headline robustness guarantee of the harness.

use pagefeed::{Database, FaultPlan, MonitorConfig, ParallelRunner, PredSpec, Query};
use pf_common::Datum;
use pf_exec::CompareOp;
use pf_workloads::synthetic::{self, SyntheticConfig};

const ROWS: usize = 40_000;

fn build_db(plan: Option<FaultPlan>) -> Database {
    let mut db = synthetic::build(&SyntheticConfig {
        rows: ROWS,
        with_t1: true,
        seed: 1,
    })
    .expect("synthetic build");
    db.set_fault_plan(plan).expect("install fault plan");
    db
}

/// A mixed workload: scans, seeks, fetches, and a join — every monitored
/// code path that can meet a corrupt page.
fn workload() -> Vec<Query> {
    let mut qs = Vec::new();
    for i in 0..10 {
        let cut = 500 + 1_700 * i;
        // c2 is correlated with layout (clustered-ish), c5 scattered:
        // the two extremes of the paper's fetch patterns.
        qs.push(Query::count(
            "T",
            vec![PredSpec::new("c2", CompareOp::Lt, Datum::Int(cut))],
        ));
        qs.push(Query::count(
            "T",
            vec![PredSpec::new("c5", CompareOp::Lt, Datum::Int(cut))],
        ));
    }
    qs.push(Query::join_count(
        "T1",
        "T",
        vec![PredSpec::new("c1", CompareOp::Lt, Datum::Int(4_000))],
        "c2",
        "c2",
    ));
    qs
}

#[test]
fn faulted_workload_completes_and_labels_degraded_queries() {
    let fault_free = build_db(None);
    let plan = FaultPlan::new(42, 0.01).expect("valid plan");
    let faulted = build_db(Some(plan));
    let damaged: usize = faulted
        .catalog()
        .tables()
        .iter()
        .map(|t| t.storage.injected_fault_count())
        .sum();
    assert!(damaged > 0, "1% of a {ROWS}-row database must damage pages");

    let queries = workload();
    let cfg = MonitorConfig::default();
    let runner = ParallelRunner::new(4);

    let clean = runner
        .run_queries(&fault_free, &queries, &cfg)
        .expect("fault-free workload");
    let results = runner.run_queries_quarantined(&faulted, &queries, &cfg);
    assert_eq!(results.len(), queries.len());

    let mut degraded = Vec::new();
    for (i, r) in results.iter().enumerate() {
        // Corruption is skipped, stalls are retried: every query must
        // still produce an outcome.
        let out = r
            .as_ref()
            .unwrap_or_else(|e| panic!("query {i} failed: {e}"));
        if out.degraded() {
            degraded.push(i);
            assert!(
                out.stats.pages_skipped > 0 || out.report.is_degraded(),
                "query {i} marked degraded without evidence"
            );
        } else {
            // The robustness contract: untouched queries are *exactly*
            // the fault-free run — same count, same sketches.
            assert_eq!(out.count, clean[i].count, "query {i} count drifted");
            assert_eq!(out.report, clean[i].report, "query {i} sketch drifted");
        }
    }
    assert!(
        !degraded.is_empty(),
        "a 1% fault rate must degrade at least one of {} queries",
        queries.len()
    );

    // The degraded set is deterministic: a rerun reports the same list.
    let rerun = runner.run_queries_quarantined(&faulted, &queries, &cfg);
    let rerun_degraded: Vec<usize> = rerun
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().ok().filter(|o| o.degraded()).map(|_| i))
        .collect();
    assert_eq!(degraded, rerun_degraded);
}

#[test]
fn faulted_sketches_are_identical_across_worker_counts() {
    let plan = FaultPlan::new(7, 0.02).expect("valid plan");
    let db = build_db(Some(plan));
    let queries = workload();
    let cfg = MonitorConfig::sampled(0.3);

    let serial = ParallelRunner::new(1).run_queries_quarantined(&db, &queries, &cfg);
    let parallel = ParallelRunner::new(8).run_queries_quarantined(&db, &queries, &cfg);
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        match (s, p) {
            (Ok(s), Ok(p)) => {
                assert_eq!(s.count, p.count, "query {i}");
                assert_eq!(s.stats, p.stats, "query {i}");
                assert_eq!(s.report, p.report, "query {i} sketch depends on jobs");
                assert_eq!(s.degraded(), p.degraded(), "query {i}");
            }
            (s, p) => panic!(
                "query {i} outcome depends on worker count: jobs=1 ok={}, jobs=8 ok={}",
                s.is_ok(),
                p.is_ok()
            ),
        }
    }
}

#[test]
fn healing_the_plan_restores_the_fault_free_run() {
    let plan = FaultPlan::new(42, 0.01).expect("valid plan");
    let mut db = build_db(Some(plan));
    let queries = workload();
    let cfg = MonitorConfig::default();
    let runner = ParallelRunner::new(4);
    let faulted = runner.run_queries_quarantined(&db, &queries, &cfg);
    assert!(faulted
        .iter()
        .any(|r| r.as_ref().is_ok_and(|o| o.degraded())));

    db.set_fault_plan(None).expect("heal");
    let clean = build_db(None);
    let healed = runner
        .run_queries(&db, &queries, &cfg)
        .expect("healed workload");
    let reference = runner
        .run_queries(&clean, &queries, &cfg)
        .expect("reference workload");
    for (i, (h, r)) in healed.iter().zip(&reference).enumerate() {
        assert_eq!(h.count, r.count, "query {i}");
        assert_eq!(h.report, r.report, "query {i}");
        assert!(!h.degraded(), "query {i} still degraded after healing");
    }
}
