//! Join hot-path microbench: the row-at-a-time reference join
//! (`PF_JOIN_VECTOR=off`) vs the vectorized pipeline (radix-partitioned
//! build, page-batched probe, semi-join filter pushdown), over the four
//! shapes the executor actually runs — build-dominated, probe-dominated,
//! filtered probe (bit-vector built and pushed into the probe scan), and
//! the monitored probe (semi-join sketch observation on every page).
//!
//! Reports rows/sec for both paths and writes
//! `BENCH_join_hot_path.json` at the workspace root for the CI bench
//! trajectory. Under `PF_BENCH_ENFORCE=1` the vectorized path must be at
//! least as fast as the row-at-a-time path on every shape.
//!
//! Run with `cargo bench --bench join_hot_path`; set
//! `PF_BENCH_BUDGET_MS` (e.g. 25) and `PF_BENCH_QUICK=1` for the CI
//! smoke configuration.

use criterion::{black_box, Bencher, Criterion};
use pf_common::{Column, DataType, Datum, Row, Schema, TableId};
use pf_exec::join::{BitVectorConfig, HashJoin};
use pf_exec::monitor::{semi_join_slot, ScanExprMonitor, ScanMonitorSet};
use pf_exec::{run_count, Conjunction, ExecContext, SeqScan};
use pf_storage::TableStorage;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Pins the `PF_JOIN_VECTOR` toggle for the duration of `f`. The bench
/// binary is single-threaded, so no lock is needed.
fn with_vector<T>(on: bool, f: impl FnOnce() -> T) -> T {
    if on {
        std::env::remove_var("PF_JOIN_VECTOR");
    } else {
        std::env::set_var("PF_JOIN_VECTOR", "off");
    }
    let out = f();
    std::env::remove_var("PF_JOIN_VECTOR");
    out
}

/// A join-key table: `k = (i * 7919) % key_mod` scrambles the key order
/// (every page mixes the whole key domain) and a short string payload
/// keeps pages realistically sized.
fn table(rows: i64, key_mod: i64) -> Arc<TableStorage> {
    let schema = Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("pad", DataType::Str),
    ]);
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Datum::Int((i * 7919) % key_mod),
                Datum::Str("x".repeat(32)),
            ])
        })
        .collect();
    Arc::new(TableStorage::load_default(schema, &data, None).unwrap())
}

fn scan(t: &Arc<TableStorage>, id: u32) -> SeqScan {
    SeqScan::full(Arc::clone(t), TableId(id), Conjunction::always_true(), None)
}

/// Plain hash join, counting driver. The vector toggle decides which
/// build/probe pipeline runs inside.
fn join_count(build: &Arc<TableStorage>, probe: &Arc<TableStorage>) -> u64 {
    let mut hj = HashJoin::new(
        Box::new(scan(build, 0)),
        Box::new(scan(probe, 1)),
        0,
        0,
        None,
    );
    let mut ctx = ExecContext::new(1 << 14);
    run_count(&mut hj, &mut ctx).unwrap()
}

/// Hash join with a bit-vector filter and pushdown requested: the
/// vectorized path installs the completed filter as a probe-scan
/// pre-filter; the row path evaluates membership in the join.
fn join_count_filtered(build: &Arc<TableStorage>, probe: &Arc<TableStorage>) -> u64 {
    let slot = semi_join_slot(0);
    let mut hj = HashJoin::new(
        Box::new(scan(build, 0)),
        Box::new(scan(probe, 1)),
        0,
        0,
        Some(BitVectorConfig {
            slot,
            numbits: 1 << 16,
            seed: 17,
            pushdown: true,
        }),
    );
    let mut ctx = ExecContext::new(1 << 14);
    run_count(&mut hj, &mut ctx).unwrap()
}

/// Hash join whose probe scan carries a semi-join monitor: the sketch
/// observes every page (DPSample fraction 1.0), the shape Fig 8 runs.
fn join_count_monitored(build: &Arc<TableStorage>, probe: &Arc<TableStorage>) -> u64 {
    let slot = semi_join_slot(0);
    let monitors = Rc::new(RefCell::new(ScanMonitorSet::new(
        vec![ScanExprMonitor::semi_join("jp", Rc::clone(&slot), None)],
        1.0,
        7,
    )));
    let probe_scan = SeqScan::full(
        Arc::clone(probe),
        TableId(1),
        Conjunction::always_true(),
        Some(monitors),
    );
    let mut hj = HashJoin::new(
        Box::new(scan(build, 0)),
        Box::new(probe_scan),
        0,
        0,
        Some(BitVectorConfig {
            slot,
            numbits: 1 << 16,
            seed: 17,
            pushdown: false,
        }),
    );
    let mut ctx = ExecContext::new(1 << 14);
    run_count(&mut hj, &mut ctx).unwrap()
}

struct Measurement {
    name: String,
    rows_per_iter: u64,
    rows_per_sec: f64,
}

fn measure(
    c: &mut Criterion,
    out: &mut Vec<Measurement>,
    name: &str,
    rows_per_iter: u64,
    vector: bool,
    mut routine: impl FnMut() -> u64,
) {
    let full = format!("{name}/{}", if vector { "vector" } else { "row" });
    let mut rows_per_sec = 0.0;
    with_vector(vector, || {
        c.bench_function(&full, |b: &mut Bencher| {
            b.iter(|| black_box(routine()));
            rows_per_sec = rows_per_iter as f64 / b.ns_per_iter() * 1e9;
        });
    });
    out.push(Measurement {
        name: full,
        rows_per_iter,
        rows_per_sec,
    });
}

fn main() {
    let quick = std::env::var("PF_BENCH_QUICK").is_ok();
    let enforce = std::env::var("PF_BENCH_ENFORCE").is_ok();
    let nrows: i64 = if quick { 10_000 } else { 100_000 };

    // Build side: nrows/4 rows over nrows/8 distinct keys (multiplicity
    // 2). Probe side: nrows rows over nrows/4 keys — half the probe key
    // domain misses the build side, which is what the filter culls.
    let build = table(nrows / 4, nrows / 8);
    let probe = table(nrows, nrows / 4);
    let empty = table(0, 1);

    // Path parity before timing anything.
    for (label, f) in [
        ("plain", join_count as fn(&_, &_) -> u64),
        ("filtered", join_count_filtered),
        ("monitored", join_count_monitored),
    ] {
        let off = with_vector(false, || f(&build, &probe));
        let on = with_vector(true, || f(&build, &probe));
        assert_eq!(off, on, "{label}: vector on/off count parity");
    }

    let mut c = Criterion::default();
    let mut out: Vec<Measurement> = Vec::new();
    let build_rows = nrows as u64 / 4;
    let probe_rows = nrows as u64;

    for vector in [false, true] {
        // Build-dominated: empty probe side isolates the build phase.
        measure(&mut c, &mut out, "build", build_rows, vector, || {
            join_count(&build, &empty)
        });
        measure(&mut c, &mut out, "probe", probe_rows, vector, || {
            join_count(&build, &probe)
        });
        measure(
            &mut c,
            &mut out,
            "filtered_probe",
            probe_rows,
            vector,
            || join_count_filtered(&build, &probe),
        );
        measure(
            &mut c,
            &mut out,
            "monitored_probe",
            probe_rows,
            vector,
            || join_count_monitored(&build, &probe),
        );
    }

    let rate = |n: &str| {
        out.iter()
            .find(|m| m.name == n)
            .map(|m| m.rows_per_sec)
            .unwrap()
    };
    let shapes = ["build", "probe", "filtered_probe", "monitored_probe"];
    let mut speedups = Vec::new();
    for s in shapes {
        let ratio = rate(&format!("{s}/vector")) / rate(&format!("{s}/row"));
        println!("{s}: vectorized {ratio:.2}x row-at-a-time");
        if enforce {
            assert!(
                ratio >= 1.0,
                "{s}: vectorized path must not regress below row-at-a-time, got {ratio:.2}x"
            );
        }
        speedups.push(format!("    \"{s}\": {ratio:.3}"));
    }

    let rows: Vec<String> = out
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"rows_per_iter\": {}, \"rows_per_sec\": {:.0}}}",
                m.name, m.rows_per_iter, m.rows_per_sec
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"join_hot_path\",\n  \"build_rows\": {build_rows},\n  \
         \"probe_rows\": {probe_rows},\n  \"hardware_threads\": {},\n  \
         \"vector_speedup\": {{\n{}\n  }},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        speedups.join(",\n"),
        rows.join(",\n")
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_join_hot_path.json");
    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {}", out_path.display());
}
