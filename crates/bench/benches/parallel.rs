//! Wall-clock throughput of the parallel workload driver: the same
//! monitored query batch executed at 1/2/4/8 workers over one shared
//! read-only storage snapshot. Emits `BENCH_parallel_driver.json`
//! (queries/sec per worker count) for the CI trend line.
//!
//! Run with `cargo bench --bench parallel`.

use pagefeed::{Database, MonitorConfig, ParallelRunner, Query, WorkloadSummary};
use pf_workloads::single_table_workload;
use pf_workloads::synthetic::{build, SyntheticConfig};
use std::time::Instant;

fn db() -> Database {
    build(&SyntheticConfig {
        rows: 40_000,
        with_t1: false,
        seed: 2_024,
    })
    .unwrap()
}

fn workload(db: &Database) -> Vec<Query> {
    single_table_workload(db, "T", &["c2", "c3", "c4", "c5"], 16, (0.01, 0.10), 7).unwrap()
}

struct Sample {
    jobs: usize,
    queries_per_sec: f64,
    speedup_vs_serial: f64,
}

fn main() {
    let db = db();
    let queries = workload(&db);
    let cfg = MonitorConfig::default();

    // Warm up page decode paths / allocator before timing anything.
    ParallelRunner::new(1)
        .run_queries(&db, &queries, &cfg)
        .unwrap();

    let mut samples: Vec<Sample> = Vec::new();
    let mut baseline_qps = 0.0;
    for jobs in [1usize, 2, 4, 8] {
        let runner = ParallelRunner::new(jobs);
        // Best of several rounds: throughput, not latency percentiles.
        let rounds = 5;
        let mut best = f64::INFINITY;
        let mut reference: Option<WorkloadSummary> = None;
        for _ in 0..rounds {
            let start = Instant::now();
            let outcomes = runner.run_queries(&db, &queries, &cfg).unwrap();
            let elapsed = start.elapsed().as_secs_f64();
            best = best.min(elapsed);
            let summary = WorkloadSummary::from_outcomes(&outcomes);
            if let Some(r) = &reference {
                assert_eq!(
                    r.total_stats, summary.total_stats,
                    "jobs={jobs}: results drifted between rounds"
                );
            }
            reference = Some(summary);
        }
        let qps = queries.len() as f64 / best;
        if jobs == 1 {
            baseline_qps = qps;
        }
        let speedup = qps / baseline_qps;
        println!(
            "jobs={jobs:<2} {:>8.1} queries/sec   {:>5.2}x vs serial",
            qps, speedup
        );
        samples.push(Sample {
            jobs,
            queries_per_sec: qps,
            speedup_vs_serial: speedup,
        });
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            format!(
                "    {{\"jobs\": {}, \"queries_per_sec\": {:.2}, \"speedup_vs_serial\": {:.3}}}",
                s.jobs, s.queries_per_sec, s.speedup_vs_serial
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"parallel_driver\",\n  \"queries\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        queries.len(),
        rows.join(",\n")
    );
    // cargo runs benches with CWD = the package dir; put the artifact at
    // the workspace root where CI collects BENCH_*.json files.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel_driver.json");
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());
}
