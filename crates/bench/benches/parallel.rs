//! Wall-clock throughput of the parallel workload driver: the same
//! monitored query batch executed at 1/2/4/8 workers over one shared
//! read-only storage snapshot, repeated for several rounds so the
//! steady state (persistent pool warm, plan cache populated, scratch
//! contexts grown) dominates. Emits `BENCH_parallel_driver.json` with
//! per-job-count throughput, speedup, worker contention counters, and
//! plan-cache effectiveness for the CI trend line.
//!
//! Run with `cargo bench --bench parallel`. Knobs:
//!
//! * `PF_BENCH_QUICK=1` — small workload / fewer rounds, for CI smoke.
//! * `PF_BENCH_ENFORCE=1` — exit non-zero if jobs=8 throughput falls
//!   below jobs=1 (the negative-scaling regression gate). Off by
//!   default because single-core hosts cannot exhibit real speedup;
//!   the JSON's `hardware_threads` field records what the host offered.

use pagefeed::{
    Database, MonitorConfig, ParallelRunner, PredSpec, Query, RunStats, WorkloadSummary,
};
use pf_common::Datum;
use pf_exec::CompareOp;
use pf_workloads::single_table_workload;
use pf_workloads::synthetic::{build, SyntheticConfig};
use std::time::Instant;

fn quick() -> bool {
    matches!(std::env::var("PF_BENCH_QUICK").as_deref(), Ok("1"))
}

fn db() -> Database {
    build(&SyntheticConfig {
        rows: if quick() { 10_000 } else { 40_000 },
        with_t1: false,
        seed: 2_024,
    })
    .unwrap()
}

fn workload(db: &Database) -> Vec<Query> {
    // n is per predicate column: 4 columns × n = total queries.
    let n = if quick() { 4 } else { 16 };
    single_table_workload(db, "T", &["c2", "c3", "c4", "c5"], n, (0.01, 0.10), 7).unwrap()
}

struct Sample {
    jobs: usize,
    queries_per_sec: f64,
    speedup_vs_serial: f64,
    utilization: f64,
    queue_wait_ms: f64,
    contention: Option<RunStats>,
}

fn main() {
    let db = db();
    let queries = workload(&db);
    let cfg = MonitorConfig::default();
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Warm up page decode paths / allocator before timing anything.
    ParallelRunner::new(1)
        .run_queries(&db, &queries, &cfg)
        .unwrap();

    let mut samples: Vec<Sample> = Vec::new();
    let mut baseline_qps = 0.0;
    for jobs in [1usize, 2, 4, 8] {
        let runner = ParallelRunner::new(jobs);
        // Best of several rounds: throughput, not latency percentiles.
        // The pool persists across rounds, so round 2+ measures the
        // steady state the driver actually runs in.
        let rounds = if quick() { 3 } else { 5 };
        let mut best = f64::INFINITY;
        let mut reference: Option<WorkloadSummary> = None;
        for _ in 0..rounds {
            let start = Instant::now();
            let outcomes = runner.run_queries(&db, &queries, &cfg).unwrap();
            let elapsed = start.elapsed().as_secs_f64();
            best = best.min(elapsed);
            let summary =
                WorkloadSummary::from_owned(outcomes).with_contention(runner.last_run_stats());
            if let Some(r) = &reference {
                assert_eq!(
                    r.total_stats, summary.total_stats,
                    "jobs={jobs}: results drifted between rounds"
                );
            }
            reference = Some(summary);
        }
        let contention = reference.and_then(|r| r.contention);
        let (utilization, queue_wait_ms) = contention.as_ref().map_or((0.0, 0.0), |c| {
            (c.utilization(), c.queue_wait_ns() as f64 / 1e6)
        });
        let qps = queries.len() as f64 / best;
        if jobs == 1 {
            baseline_qps = qps;
        }
        let speedup = qps / baseline_qps;
        println!(
            "jobs={jobs:<2} {qps:>8.1} queries/sec   {speedup:>5.2}x vs serial   {:>5.1}% busy   {queue_wait_ms:>7.2} ms queue wait",
            utilization * 100.0,
        );
        samples.push(Sample {
            jobs,
            queries_per_sec: qps,
            speedup_vs_serial: speedup,
            utilization,
            queue_wait_ms,
            contention,
        });
    }

    let cache = db.plan_cache_stats();
    println!(
        "plan cache: {} hits / {} misses ({:.0}% hit rate), {} invalidations",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        cache.invalidations,
    );

    // -----------------------------------------------------------------
    // Intra-query morsel scaling: single queries repeatedly executed
    // through `run_query`, which splits the monitored scan into
    // page-range morsels and the hash join into build/probe morsels.
    // Each case asserts bit-identity against its jobs=1 outcome before
    // timing counts for anything.
    // -----------------------------------------------------------------
    let nrows = if quick() { 10_000i64 } else { 40_000 };
    let cases: Vec<(&str, Query, MonitorConfig)> = vec![
        (
            "monitored_scan",
            Query::count(
                "T",
                vec![PredSpec::new(
                    "c2",
                    CompareOp::Lt,
                    Datum::Int(nrows * 3 / 4),
                )],
            ),
            MonitorConfig::sampled(0.5),
        ),
        (
            // Scattered inner join column keeps the optimizer on a hash
            // join; its build and probe phases split into morsels.
            "hash_join",
            Query::join_count("T", "T", vec![], "c2", "c5"),
            MonitorConfig::default(),
        ),
    ];
    let reps = if quick() { 3 } else { 8 };
    let mut intra: Vec<(String, usize, f64, f64)> = Vec::new();
    for (name, query, mcfg) in &cases {
        let serial = db.run(query, mcfg).unwrap();
        let mut base_eps = 0.0;
        for jobs in [1usize, 2, 4, 8] {
            let runner = ParallelRunner::new(jobs);
            // Warm the pool, and check the morsel result is the serial
            // result before trusting any timing from this case.
            let outcome = runner.run_query(&db, query, mcfg).unwrap();
            assert_eq!(serial.count, outcome.count, "{name} jobs={jobs}");
            assert_eq!(serial.stats, outcome.stats, "{name} jobs={jobs}");
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let start = Instant::now();
                for _ in 0..reps {
                    runner.run_query(&db, query, mcfg).unwrap();
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            let eps = reps as f64 / best;
            if jobs == 1 {
                base_eps = eps;
            }
            let speedup = eps / base_eps;
            println!("{name:<16} jobs={jobs:<2} {eps:>8.1} execs/sec   {speedup:>5.2}x vs serial");
            intra.push((name.to_string(), jobs, eps, speedup));
        }
    }

    let rows: Vec<String> = samples
        .iter()
        .map(|s| {
            let workers: Vec<String> = s
                .contention
                .iter()
                .flat_map(|c| &c.workers)
                .map(|w| {
                    format!(
                        "{{\"worker\": {}, \"tasks\": {}, \"batches\": {}, \"busy_ns\": {}, \"queue_wait_ns\": {}}}",
                        w.worker, w.tasks, w.batches, w.busy_ns, w.queue_wait_ns
                    )
                })
                .collect();
            format!(
                "    {{\"jobs\": {}, \"queries_per_sec\": {:.2}, \"speedup_vs_serial\": {:.3}, \"utilization\": {:.3}, \"queue_wait_ms\": {:.3}, \"workers\": [{}]}}",
                s.jobs,
                s.queries_per_sec,
                s.speedup_vs_serial,
                s.utilization,
                s.queue_wait_ms,
                workers.join(", ")
            )
        })
        .collect();
    let intra_rows: Vec<String> = intra
        .iter()
        .map(|(name, jobs, eps, speedup)| {
            format!(
                "    {{\"case\": \"{name}\", \"jobs\": {jobs}, \"execs_per_sec\": {eps:.2}, \"speedup_vs_serial\": {speedup:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"parallel_driver\",\n  \"queries\": {},\n  \"hardware_threads\": {},\n  \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}, \"invalidations\": {}}},\n  \"results\": [\n{}\n  ],\n  \"intra_query\": [\n{}\n  ]\n}}\n",
        queries.len(),
        hardware_threads,
        cache.hits,
        cache.misses,
        cache.hit_rate(),
        cache.invalidations,
        rows.join(",\n"),
        intra_rows.join(",\n")
    );
    // cargo runs benches with CWD = the package dir; put the artifact at
    // the workspace root where CI collects BENCH_*.json files.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_parallel_driver.json");
    std::fs::write(&out, &json).unwrap();
    println!("wrote {}", out.display());

    if matches!(std::env::var("PF_BENCH_ENFORCE").as_deref(), Ok("1")) {
        let qps_at = |jobs: usize| {
            samples
                .iter()
                .find(|s| s.jobs == jobs)
                .map(|s| s.queries_per_sec)
                .unwrap_or(0.0)
        };
        let (one, eight) = (qps_at(1), qps_at(8));
        if eight < one {
            eprintln!("FAIL: negative scaling — jobs=8 {eight:.1} q/s < jobs=1 {one:.1} q/s");
            std::process::exit(1);
        }
        println!("scaling gate passed: jobs=8 {eight:.1} q/s >= jobs=1 {one:.1} q/s");
        for (name, _, _) in &cases {
            let eps_at = |jobs: usize| {
                intra
                    .iter()
                    .find(|(n, j, _, _)| n == name && *j == jobs)
                    .map(|(_, _, eps, _)| *eps)
                    .unwrap_or(0.0)
            };
            let (one, eight) = (eps_at(1), eps_at(8));
            if eight < one {
                eprintln!(
                    "FAIL: negative morsel scaling — {name} jobs=8 {eight:.1} execs/s < jobs=1 {one:.1} execs/s"
                );
                std::process::exit(1);
            }
            println!(
                "morsel gate passed: {name} jobs=8 {eight:.1} execs/s >= jobs=1 {one:.1} execs/s"
            );
        }
    }
}
