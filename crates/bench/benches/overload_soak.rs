//! Overload soak: seeded 4×-over-capacity query storms through
//! admission control, the memory-reservation ladder, and the feedback
//! circuit breaker, at seeds {1,2,3} × store error rates {0, 0.01}.
//! Every scenario runs at jobs ∈ {1, 2, 8} and must produce a
//! byte-identical admit/shed/breaker trace (the digest), plus a repeat
//! run at the same seed for replay identity. Emits
//! `BENCH_overload_soak.json` with shed rate, p99 simulated queue
//! wait, and breaker trips per scenario for the CI trend line.
//!
//! Run with `cargo bench --bench overload_soak`. Knobs:
//!
//! * `PF_BENCH_QUICK=1` — smaller storms, for CI smoke.
//! * `PF_BENCH_ENFORCE=1` — exit non-zero if a storm sheds nothing,
//!   sheds everything, or lets the p99 simulated queue wait exceed the
//!   storm's own simulated duration. The determinism and boundedness
//!   invariants are asserted unconditionally.

use pf_bench::soak::{run_soak, SoakSpec};

fn quick() -> bool {
    matches!(std::env::var("PF_BENCH_QUICK").as_deref(), Ok("1"))
}

struct Row {
    seed: u64,
    error_rate: f64,
    shed_rate: f64,
    p99_queue_wait_ms: f64,
    breaker_trips: u64,
    completed: usize,
    durable: u64,
    digest: u64,
}

fn main() {
    let queries = if quick() { 400 } else { 2_000 };
    let mut rows: Vec<Row> = Vec::new();
    let mut violations: Vec<String> = Vec::new();

    for seed in [1u64, 2, 3] {
        for error_rate in [0.0, 0.01] {
            // jobs=1 is the reference; 2 and 8 must match its digest.
            let reference = run_soak(&SoakSpec::storm(seed, queries, error_rate, 1));
            reference.assert_invariants();
            for jobs in [2usize, 8] {
                let other = run_soak(&SoakSpec::storm(seed, queries, error_rate, jobs));
                other.assert_invariants();
                assert_eq!(
                    reference.digest, other.digest,
                    "seed={seed} rate={error_rate}: jobs={jobs} trace diverged from jobs=1"
                );
            }
            // Replay identity at the same seed.
            let replay = run_soak(&SoakSpec::storm(seed, queries, error_rate, 1));
            assert_eq!(
                reference.digest, replay.digest,
                "seed={seed} rate={error_rate}: repeat run diverged"
            );

            let report = &reference.report;
            let shed_rate = report.shed_rate();
            let p99 = report.stats.p99_queue_wait_ms();
            let trips = report.run_stats.breaker_trips;
            println!(
                "seed={seed} rate={error_rate:<4} shed={:>5.1}% p99_wait={p99:>8.3} ms trips={trips} completed={} durable={} digest={:016x}",
                shed_rate * 100.0,
                reference.completed,
                report.durable_reports,
                reference.digest,
            );

            // A 4x storm must shed something but not everything, and a
            // bounded queue means bounded simulated waits: the p99 wait
            // cannot exceed the whole storm's simulated span.
            let span_ms = report
                .records
                .iter()
                .map(|r| r.completed_ms)
                .fold(0.0f64, f64::max);
            if shed_rate <= 0.0 {
                violations.push(format!(
                    "seed={seed} rate={error_rate}: 4x storm shed nothing"
                ));
            }
            if shed_rate >= 1.0 {
                violations.push(format!(
                    "seed={seed} rate={error_rate}: storm shed everything"
                ));
            }
            if p99 > span_ms {
                violations.push(format!(
                    "seed={seed} rate={error_rate}: p99 wait {p99:.3} ms exceeds storm span {span_ms:.3} ms"
                ));
            }
            // A torn store fails every subsequent append, so once the
            // run has accumulated threshold-many failed/skipped appends
            // the breaker must have tripped. (At a 1% rate the fault may
            // deterministically never fire in a short storm — that run
            // legitimately records zero failures and zero trips.)
            let failed_appends = report.absorbed_reports - report.durable_reports;
            if failed_appends >= 3 && trips == 0 {
                violations.push(format!(
                    "seed={seed} rate={error_rate}: {failed_appends} failed appends but the breaker never tripped"
                ));
            }
            if error_rate == 0.0 && trips != 0 {
                violations.push(format!(
                    "seed={seed} rate={error_rate}: breaker tripped without faults"
                ));
            }

            rows.push(Row {
                seed,
                error_rate,
                shed_rate,
                p99_queue_wait_ms: p99,
                breaker_trips: trips,
                completed: reference.completed,
                durable: report.durable_reports,
                digest: reference.digest,
            });
        }
    }

    let json_rows: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"seed\": {}, \"error_rate\": {}, \"shed_rate\": {:.4}, \"p99_queue_wait_ms\": {:.3}, \"breaker_trips\": {}, \"completed\": {}, \"durable_reports\": {}, \"digest\": \"{:016x}\"}}",
                r.seed,
                r.error_rate,
                r.shed_rate,
                r.p99_queue_wait_ms,
                r.breaker_trips,
                r.completed,
                r.durable,
                r.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"overload_soak\",\n  \"queries_per_storm\": {queries},\n  \"over_capacity\": 4.0,\n  \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        json_rows.join(",\n")
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_overload_soak.json");
    std::fs::write(&out, &json).expect("write artifact");
    println!("wrote {}", out.display());

    if matches!(std::env::var("PF_BENCH_ENFORCE").as_deref(), Ok("1")) {
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("FAIL: {v}");
            }
            std::process::exit(1);
        }
        println!("overload gates passed: {} scenarios", rows.len());
    } else if !violations.is_empty() {
        for v in &violations {
            println!("note (unenforced): {v}");
        }
    }
}
