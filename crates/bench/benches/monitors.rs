//! Criterion benches for end-to-end monitoring overhead in *wall-clock*
//! terms: the same plan executed with monitoring off, exact, and
//! page-sampled. This cross-checks the simulated-clock overheads of
//! Figs 7 and 9 against real CPU time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pagefeed::{Database, MonitorConfig, PredSpec, Query};
use pf_common::Datum;
use pf_exec::CompareOp;
use pf_workloads::synthetic::{build, SyntheticConfig};

fn db() -> Database {
    build(&SyntheticConfig {
        rows: 40_000,
        with_t1: true,
        seed: 77,
    })
    .unwrap()
}

fn bench_scan_monitoring(c: &mut Criterion) {
    let db = db();
    let query = Query::count(
        "T",
        vec![
            PredSpec::new("c2", CompareOp::Lt, Datum::Int(2_000)),
            PredSpec::new("c5", CompareOp::Lt, Datum::Int(20_000)),
        ],
    );
    let mut g = c.benchmark_group("scan_monitoring");
    g.sample_size(20);
    for (name, cfg) in [
        ("off", MonitorConfig::off()),
        ("sampled_1pct", MonitorConfig::sampled(0.01)),
        ("exact", MonitorConfig::default()),
    ] {
        g.bench_with_input(BenchmarkId::new("table_scan", name), &cfg, |b, cfg| {
            b.iter(|| db.run(&query, cfg).unwrap().count)
        });
    }
    g.finish();
}

fn bench_join_monitoring(c: &mut Criterion) {
    let db = db();
    let query = Query::join_count(
        "T1",
        "T",
        vec![PredSpec::new("c1", CompareOp::Lt, Datum::Int(1_200))],
        "c2",
        "c2",
    );
    let mut g = c.benchmark_group("join_monitoring");
    g.sample_size(10);
    for (name, cfg) in [
        ("off", MonitorConfig::off()),
        ("bitvector_sampled", MonitorConfig::sampled(0.25)),
    ] {
        g.bench_with_input(BenchmarkId::new("hash_join", name), &cfg, |b, cfg| {
            b.iter(|| db.run(&query, cfg).unwrap().count)
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scan_monitoring, bench_join_monitoring);
criterion_main!(benches);
