//! Monitoring-overhead bench: the real `SeqScan` operator with DPC
//! monitors attached versus the bare zero-copy view pipeline over the
//! same pages and predicate.
//!
//! The page-at-a-time pipeline batches sketch observation (one
//! `observe_page` per monitor per page) and evaluates fixed-width
//! predicate atoms with word-level kernels, so the *monitored* operator
//! should sit within a small constant factor of the unmonitored view
//! scan. This bench measures that factor per shape and writes
//! `BENCH_monitor_overhead.json` at the workspace root; under
//! `PF_BENCH_ENFORCE` the full-scan shapes must show < 15% operator
//! overhead.
//!
//! Run with `cargo bench -p pf-bench --bench monitors`; set
//! `PF_BENCH_QUICK=1` for the CI smoke configuration.

use criterion::{black_box, Bencher, Criterion};
use pf_common::{Column, DataType, Datum, PageId, Row, Schema, TableId};
use pf_exec::scan::SeqScan;
use pf_exec::{
    AtomicPredicate, CompareOp, Conjunction, ExecContext, Operator, ScanExprMonitor, ScanMonitorSet,
};
use pf_storage::TableStorage;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// The scan-shape table: two int columns (kernel-eligible) and a string
/// payload so pages look like the paper's synthetic workload.
fn table(rows: i64) -> Arc<TableStorage> {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("val", DataType::Int),
        Column::new("pad", DataType::Str),
    ]);
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Datum::Int(i),
                Datum::Int((i * 7919) % rows),
                Datum::Str("x".repeat(64)),
            ])
        })
        .collect();
    Arc::new(TableStorage::load_default(schema, &data, Some(0)).unwrap())
}

fn atom(t: &TableStorage, col: &str, op: CompareOp, v: i64) -> AtomicPredicate {
    AtomicPredicate::new(t.schema(), col, op, Datum::Int(v)).unwrap()
}

/// Bare view pipeline: evaluate borrowed views, materialize only hits —
/// the floor the monitored operator is compared against.
fn view_scan(t: &TableStorage, p: &Conjunction) -> u64 {
    let mut hits = 0u64;
    for pid in 0..t.page_count() {
        for view in t.page_cursor(PageId(pid)).unwrap() {
            let view = view.unwrap();
            if p.eval_short_circuit(&view).0 {
                black_box(view.materialize());
                hits += 1;
            }
        }
    }
    hits
}

/// One ScanExprMonitor per atom plus the full conjunction — the monitor
/// population the planner attaches to a multi-atom scan.
fn monitor_set(pred: &Conjunction, fraction: f64) -> ScanMonitorSet {
    let mut exprs: Vec<ScanExprMonitor> = (0..pred.len())
        .map(|i| ScanExprMonitor::atoms(pred, vec![i], None))
        .collect();
    if pred.len() > 1 {
        exprs.push(ScanExprMonitor::atoms(
            pred,
            (0..pred.len()).collect(),
            None,
        ));
    }
    ScanMonitorSet::new(exprs, fraction, 0xFEED)
}

/// The real operator with monitors attached; a fresh monitor set per
/// iteration so sketch state never accumulates across iterations.
fn operator_scan(t: &Arc<TableStorage>, p: &Conjunction, fraction: f64) -> u64 {
    let monitors = Rc::new(RefCell::new(monitor_set(p, fraction)));
    let mut scan = SeqScan::full(Arc::clone(t), TableId(0), p.clone(), Some(monitors));
    let mut ctx = ExecContext::new(1 << 14);
    let mut n = 0u64;
    while scan.next(&mut ctx).unwrap().is_some() {
        n += 1;
    }
    n
}

struct Shape {
    name: &'static str,
    view_rows_per_sec: f64,
    operator_rows_per_sec: f64,
    overhead_pct: f64,
}

fn rows_per_sec(c: &mut Criterion, name: &str, rows: u64, mut routine: impl FnMut() -> u64) -> f64 {
    let mut rps = 0.0;
    c.bench_function(name, |b: &mut Bencher| {
        b.iter(&mut routine);
        rps = rows as f64 / b.ns_per_iter() * 1e9;
    });
    rps
}

fn main() {
    let quick = std::env::var("PF_BENCH_QUICK").is_ok();
    let enforce = std::env::var("PF_BENCH_ENFORCE").is_ok();
    let nrows: i64 = if quick { 10_000 } else { 100_000 };
    let t = table(nrows);
    let total = t.row_count();

    // ~1% selectivity, like the hot-path bench: almost every row is
    // observed by monitors but never delivered.
    let one_atom = Conjunction::new(vec![atom(&t, "val", CompareOp::Lt, nrows / 100)]);
    // Two atoms: the second stripe only applies to prefix survivors.
    let two_atom = Conjunction::new(vec![
        atom(&t, "val", CompareOp::Lt, nrows / 100),
        atom(&t, "id", CompareOp::Ge, nrows / 2),
    ]);

    for (pred, frac) in [(&one_atom, 1.0), (&two_atom, 1.0), (&two_atom, 0.5)] {
        assert_eq!(
            view_scan(&t, pred),
            operator_scan(&t, pred, frac),
            "operator parity"
        );
    }

    let mut c = Criterion::default();
    let mut shapes: Vec<Shape> = Vec::new();
    let measure = |c: &mut Criterion, name: &'static str, pred: &Conjunction, frac: f64| {
        let view = rows_per_sec(c, &format!("{name}/view"), total, || view_scan(&t, pred));
        let op = rows_per_sec(c, &format!("{name}/operator"), total, || {
            operator_scan(&t, pred, frac)
        });
        Shape {
            name,
            view_rows_per_sec: view,
            operator_rows_per_sec: op,
            overhead_pct: (view / op - 1.0) * 100.0,
        }
    };
    let s = measure(&mut c, "full_scan_one_atom", &one_atom, 1.0);
    shapes.push(s);
    let s = measure(&mut c, "full_scan_two_atom", &two_atom, 1.0);
    shapes.push(s);
    let s = measure(&mut c, "full_scan_sampled", &two_atom, 0.5);
    shapes.push(s);

    for s in &shapes {
        println!(
            "{}: view {:.1}M rows/s, monitored operator {:.1}M rows/s, overhead {:.1}%",
            s.name,
            s.view_rows_per_sec / 1e6,
            s.operator_rows_per_sec / 1e6,
            s.overhead_pct
        );
    }

    if enforce && !quick {
        for s in &shapes {
            assert!(
                s.overhead_pct < 15.0,
                "{}: monitored operator overhead must stay < 15% of the view scan, got {:.1}%",
                s.name,
                s.overhead_pct
            );
        }
    }

    let rows: Vec<String> = shapes
        .iter()
        .map(|s| {
            format!(
                "    {{\"name\": \"{}\", \"view_rows_per_sec\": {:.0}, \
                 \"operator_rows_per_sec\": {:.0}, \"overhead_pct\": {:.2}}}",
                s.name, s.view_rows_per_sec, s.operator_rows_per_sec, s.overhead_pct
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"monitor_overhead\",\n  \"table_rows\": {total},\n  \
         \"hardware_threads\": {},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n")
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_monitor_overhead.json");
    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {}", out_path.display());
}
