//! Criterion microbenches for the counting mechanisms themselves — the
//! per-row costs that Section V's "< 2 % overhead" claims rest on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pf_common::rng::Rng;
use pf_common::Datum;
use pf_feedback::distinct_estimators::{estimate_gee, ReservoirSampler};
use pf_feedback::{BitVectorFilter, DpSampler, GroupedPageCounter, LinearCounter};

fn pid_stream(n: usize, pages: u32, seed: u64) -> Vec<u32> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| rng.gen_range(u64::from(pages)) as u32)
        .collect()
}

fn bench_linear_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("linear_counter");
    for &n in &[10_000usize, 100_000] {
        let stream = pid_stream(n, 8_192, 1);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("observe", n), &stream, |b, s| {
            b.iter(|| {
                let mut lc = LinearCounter::new(8_192, 7);
                for &p in s {
                    lc.observe(black_box(p));
                }
                black_box(lc.estimate())
            })
        });
    }
    g.finish();
}

fn bench_grouped_counter(c: &mut Criterion) {
    let mut g = c.benchmark_group("grouped_counter");
    let n = 100_000usize;
    let rows_per_page = 50u64;
    // One batched observation per 50-row page, matching the operator's
    // page-at-a-time pipeline.
    let pages: Vec<(u32, u64)> = (0..n as u64 / rows_per_page)
        .map(|p| {
            let satisfying = (0..rows_per_page)
                .filter(|r| (p * rows_per_page + r).is_multiple_of(7))
                .count() as u64;
            (p as u32, satisfying)
        })
        .collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("observe_page", |b| {
        b.iter(|| {
            let mut gc = GroupedPageCounter::new();
            for &(p, s) in &pages {
                gc.observe_page(black_box(p), black_box(s), rows_per_page);
            }
            gc.finish();
            black_box(gc.count())
        })
    });
    g.finish();
}

fn bench_dpsample(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpsample");
    let pages = 10_000u32;
    for &f in &[0.01, 0.1, 1.0] {
        g.bench_with_input(BenchmarkId::new("scan", format!("f={f}")), &f, |b, &f| {
            b.iter(|| {
                let mut s = DpSampler::new(f, 3).unwrap();
                for p in 0..pages {
                    if s.start_page() {
                        for r in 0..50u32 {
                            s.observe_row(black_box(p.wrapping_add(r)) % 3 == 0);
                        }
                    }
                }
                s.finish();
                black_box(s.estimate())
            })
        });
    }
    g.finish();
}

fn bench_bitvector(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitvector");
    let keys: Vec<Datum> = (0..100_000).map(Datum::Int).collect();
    g.throughput(Throughput::Elements(keys.len() as u64));
    g.bench_function("insert", |b| {
        b.iter(|| {
            let mut f = BitVectorFilter::new(1 << 17, 5);
            for k in &keys {
                f.insert(black_box(k));
            }
            black_box(f.fill_ratio())
        })
    });
    let mut filter = BitVectorFilter::new(1 << 17, 5);
    for k in &keys {
        filter.insert(k);
    }
    g.bench_function("probe", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for k in &keys {
                hits += u64::from(filter.may_contain(black_box(k)));
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_reservoir_gee(c: &mut Criterion) {
    let mut g = c.benchmark_group("reservoir_gee");
    let stream = pid_stream(100_000, 4_096, 9);
    g.throughput(Throughput::Elements(stream.len() as u64));
    g.bench_function("offer_and_estimate", |b| {
        b.iter(|| {
            let mut rs = ReservoirSampler::new(1_024, 2);
            for &p in &stream {
                rs.offer(black_box(p));
            }
            black_box(estimate_gee(rs.sample(), rs.seen()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_linear_counter,
    bench_grouped_counter,
    bench_dpsample,
    bench_bitvector,
    bench_reservoir_gee
);
criterion_main!(benches);
