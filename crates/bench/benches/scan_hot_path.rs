//! Scan hot-path microbench: owned-decode baseline vs the zero-copy
//! borrowed-view pipeline, over the three access shapes the executor
//! actually runs — full scan, clustered range scan, and index fetch.
//!
//! Reports rows/sec and *allocations per row* for both paths (a counting
//! global allocator wraps the system allocator), and writes
//! `BENCH_scan_hot_path.json` at the workspace root for the CI bench
//! trajectory. The acceptance bar for the zero-copy pipeline is ≥ 2×
//! rows/sec on the full-scan shape.
//!
//! Run with `cargo bench --bench scan_hot_path`; set
//! `PF_BENCH_BUDGET_MS` (e.g. 25) and `PF_BENCH_QUICK=1` for the CI
//! smoke configuration.

use criterion::{black_box, Bencher, Criterion};
use pf_common::{Column, DataType, Datum, PageId, Rid, Row, Schema, TableId};
use pf_exec::scan::SeqScan;
use pf_exec::{AtomicPredicate, CompareOp, Conjunction, ExecContext, Operator};
use pf_storage::TableStorage;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// System allocator wrapper counting every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<F: FnMut()>(mut f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

/// Rows mimicking the paper's synthetic table: int key, scrambled int,
/// and a string payload (the column whose owned decode allocates).
fn table(rows: i64) -> Arc<TableStorage> {
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("val", DataType::Int),
        Column::new("pad", DataType::Str),
    ]);
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            Row::new(vec![
                Datum::Int(i),
                Datum::Int((i * 7919) % rows),
                Datum::Str("x".repeat(64)),
            ])
        })
        .collect();
    Arc::new(TableStorage::load_default(schema, &data, Some(0)).unwrap())
}

fn pred(t: &TableStorage, col: &str, lt: i64) -> Conjunction {
    Conjunction::new(vec![AtomicPredicate::new(
        t.schema(),
        col,
        CompareOp::Lt,
        Datum::Int(lt),
    )
    .unwrap()])
}

/// Owned baseline: decode every row on every page, then evaluate.
fn full_scan_owned(t: &TableStorage, p: &Conjunction) -> u64 {
    let mut hits = 0u64;
    for pid in 0..t.page_count() {
        for row in t.rows_on_page(PageId(pid)).unwrap() {
            if p.eval_short_circuit(&row).0 {
                hits += 1;
            }
        }
    }
    hits
}

/// Zero-copy pipeline: evaluate borrowed views; materialize only hits.
fn full_scan_view(t: &TableStorage, p: &Conjunction) -> u64 {
    let mut hits = 0u64;
    for pid in 0..t.page_count() {
        for view in t.page_cursor(PageId(pid)).unwrap() {
            let view = view.unwrap();
            if p.eval_short_circuit(&view).0 {
                black_box(view.materialize());
                hits += 1;
            }
        }
    }
    hits
}

fn range_pages(t: &TableStorage, lo: i64, hi: i64) -> (u32, u32) {
    t.locate_range(Some(&Datum::Int(lo)), Some(&Datum::Int(hi)))
        .unwrap()
}

fn range_scan_owned(t: &TableStorage, p: &Conjunction, pages: (u32, u32)) -> u64 {
    let mut hits = 0u64;
    for pid in pages.0..pages.1 {
        for row in t.rows_on_page(PageId(pid)).unwrap() {
            if p.eval_short_circuit(&row).0 {
                hits += 1;
            }
        }
    }
    hits
}

fn range_scan_view(t: &TableStorage, p: &Conjunction, pages: (u32, u32)) -> u64 {
    let mut hits = 0u64;
    for pid in pages.0..pages.1 {
        for view in t.page_cursor(PageId(pid)).unwrap() {
            let view = view.unwrap();
            if p.eval_short_circuit(&view).0 {
                black_box(view.materialize());
                hits += 1;
            }
        }
    }
    hits
}

fn index_fetch_owned(t: &TableStorage, rids: &[Rid], residual: &Conjunction) -> u64 {
    let mut hits = 0u64;
    for &rid in rids {
        let row = t.read_row(rid).unwrap();
        if residual.eval_short_circuit(&row).0 {
            hits += 1;
        }
    }
    hits
}

fn index_fetch_view(t: &TableStorage, rids: &[Rid], residual: &Conjunction) -> u64 {
    let mut hits = 0u64;
    for &rid in rids {
        let view = t.read_row_view(rid).unwrap();
        if residual.eval_short_circuit(&view).0 {
            black_box(view.materialize());
            hits += 1;
        }
    }
    hits
}

/// End-to-end sanity: the real SeqScan operator (which now runs the
/// view pipeline internally) against the same table.
fn operator_scan(t: &Arc<TableStorage>, p: &Conjunction) -> u64 {
    let mut scan = SeqScan::full(Arc::clone(t), TableId(0), p.clone(), None);
    let mut ctx = ExecContext::new(1 << 14);
    let mut n = 0u64;
    while scan.next(&mut ctx).unwrap().is_some() {
        n += 1;
    }
    n
}

struct Measurement {
    name: &'static str,
    rows_per_iter: u64,
    rows_per_sec: f64,
    allocs_per_row: f64,
}

fn measure(
    c: &mut Criterion,
    out: &mut Vec<Measurement>,
    name: &'static str,
    rows_per_iter: u64,
    mut routine: impl FnMut() -> u64,
) {
    let mut rows_per_sec = 0.0;
    c.bench_function(name, |b: &mut Bencher| {
        b.iter(&mut routine);
        rows_per_sec = rows_per_iter as f64 / b.ns_per_iter() * 1e9;
    });
    let allocs = allocations_during(|| {
        black_box(routine());
    });
    out.push(Measurement {
        name,
        rows_per_iter,
        rows_per_sec,
        allocs_per_row: allocs as f64 / rows_per_iter as f64,
    });
}

fn main() {
    let quick = std::env::var("PF_BENCH_QUICK").is_ok();
    let nrows: i64 = if quick { 10_000 } else { 100_000 };
    let t = table(nrows);
    let total = t.row_count();

    // ~1% selectivity on the scrambled column: scans reject most rows,
    // which is exactly where borrowed evaluation pays.
    let scan_pred = pred(&t, "val", nrows / 100);
    // Range covering ~10% of the clustered key space.
    let pages = range_pages(&t, nrows / 4, nrows / 4 + nrows / 10);
    let range_rows: u64 = (pages.0..pages.1)
        .map(|p| u64::from(t.page(PageId(p)).unwrap().slot_count()))
        .sum();
    // Index fetch: every 37th row in scrambled order, half passing the
    // residual.
    let rids: Vec<Rid> = t.all_rids().step_by(37).collect();
    let residual = pred(&t, "val", nrows / 2);

    let expected_hits = full_scan_owned(&t, &scan_pred);
    assert_eq!(expected_hits, full_scan_view(&t, &scan_pred), "path parity");
    assert_eq!(
        expected_hits,
        operator_scan(&t, &scan_pred),
        "operator parity"
    );
    assert_eq!(
        index_fetch_owned(&t, &rids, &residual),
        index_fetch_view(&t, &rids, &residual),
        "fetch parity"
    );

    let mut c = Criterion::default();
    let mut out: Vec<Measurement> = Vec::new();

    measure(&mut c, &mut out, "full_scan/owned", total, || {
        full_scan_owned(&t, &scan_pred)
    });
    measure(&mut c, &mut out, "full_scan/view", total, || {
        full_scan_view(&t, &scan_pred)
    });
    measure(&mut c, &mut out, "full_scan/operator", total, || {
        operator_scan(&t, &scan_pred)
    });
    measure(&mut c, &mut out, "range_scan/owned", range_rows, || {
        range_scan_owned(&t, &scan_pred, pages)
    });
    measure(&mut c, &mut out, "range_scan/view", range_rows, || {
        range_scan_view(&t, &scan_pred, pages)
    });
    measure(
        &mut c,
        &mut out,
        "index_fetch/owned",
        rids.len() as u64,
        || index_fetch_owned(&t, &rids, &residual),
    );
    measure(
        &mut c,
        &mut out,
        "index_fetch/view",
        rids.len() as u64,
        || index_fetch_view(&t, &rids, &residual),
    );

    let speedup = |a: &str, b: &str| {
        let f = |n: &str| out.iter().find(|m| m.name == n).unwrap().rows_per_sec;
        f(b) / f(a)
    };
    let full_speedup = speedup("full_scan/owned", "full_scan/view");
    let range_speedup = speedup("range_scan/owned", "range_scan/view");
    let fetch_speedup = speedup("index_fetch/owned", "index_fetch/view");
    println!(
        "speedups: full_scan {full_speedup:.2}x  range_scan {range_speedup:.2}x  \
         index_fetch {fetch_speedup:.2}x"
    );
    if !quick {
        assert!(
            full_speedup >= 2.0,
            "zero-copy full scan must be >= 2x owned decode, got {full_speedup:.2}x"
        );
    }

    let rows: Vec<String> = out
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\": \"{}\", \"rows_per_iter\": {}, \"rows_per_sec\": {:.0}, \
                 \"allocs_per_row\": {:.4}}}",
                m.name, m.rows_per_iter, m.rows_per_sec, m.allocs_per_row
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"scan_hot_path\",\n  \"table_rows\": {total},\n  \
         \"hardware_threads\": {},\n  \
         \"full_scan_speedup\": {full_speedup:.3},\n  \"range_scan_speedup\": {range_speedup:.3},\n  \
         \"index_fetch_speedup\": {fetch_speedup:.3},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n")
    );
    let out_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scan_hot_path.json");
    std::fs::write(&out_path, &json).unwrap();
    println!("wrote {}", out_path.display());
}
