//! Small shared helpers for experiment output.

/// Mean of a slice (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Maximum (0 for empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(0.0, f64::max)
}

/// The synthetic table size, overridable via `PF_ROWS` for quick runs.
pub fn synthetic_rows() -> usize {
    pf_common::env_knob("PF_ROWS").unwrap_or(320_000)
}

/// Prints a header line for an experiment section.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Attaches a durable feedback store under `$PF_FEEDBACK_DIR/<name>`
/// (set by `repro --feedback-dir`), when the variable names a directory.
/// Recovered measurements are replayed into the hint set before the
/// workload runs, so a repro restarted after a crash re-optimizes from
/// persisted feedback — the re-optimized plans are byte-identical to the
/// uninterrupted run's — and every measurement the workload harvests is
/// WAL-durable before it is used. Returns the recovered-report count
/// (0 when persistence is off).
pub fn attach_feedback_from_env(
    db: &mut pagefeed::Database,
    name: &str,
) -> pf_common::Result<usize> {
    let Ok(root) = std::env::var(pagefeed::FEEDBACK_DIR_ENV) else {
        return Ok(0);
    };
    if root.is_empty() {
        return Ok(0);
    }
    let dir = std::path::Path::new(&root).join(name);
    let recovered = db.attach_feedback_store(&dir)?;
    println!(
        "feedback store {}: {recovered} report(s) recovered",
        dir.display()
    );
    Ok(recovered)
}

/// Prints which queries of a feedback workload ran degraded (skipped
/// corrupt pages) — silent when the run was fault-free, so the tables
/// above stay byte-identical to a run without injection.
pub fn report_degraded(outcomes: &[pagefeed::FeedbackOutcome]) {
    let degraded: Vec<String> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| o.degraded())
        .map(|(i, o)| format!("{i} ({} pages)", o.skipped_pages()))
        .collect();
    if !degraded.is_empty() {
        println!(
            "degraded queries ({} of {} skipped corrupt pages): {}",
            degraded.len(),
            outcomes.len(),
            degraded.join(", ")
        );
    }
}

/// Prints the watchdog and cancellation counters of `runner`'s last
/// invocation — silent when nothing stalled, was rescued, or was
/// aborted, so fault-free experiment output stays byte-identical.
pub fn report_resilience(runner: &pagefeed::ParallelRunner) {
    let Some(rs) = runner.last_run_stats() else {
        return;
    };
    if rs.stalls_detected > 0 || rs.morsels_rescued > 0 || rs.queries_cancelled > 0 {
        println!(
            "resilience: {} stall(s) detected, {} morsel(s) rescued, {} query(ies) cancelled",
            rs.stalls_detected, rs.morsels_rescued, rs.queries_cancelled
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[1.0, 3.0]), 1.0);
        assert_eq!(max(&[1.0, -2.0, 0.5]), 1.0);
    }

    #[test]
    fn report_resilience_is_silent_without_a_run() {
        // Smoke: a fresh runner has no last-run stats and must not
        // panic or print.
        report_resilience(&pagefeed::ParallelRunner::new(1));
    }
}
