//! # pf-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation (Section V),
//! plus the ablations DESIGN.md calls out. The `repro` binary dispatches
//! to these; each prints the rows/series the paper's plot reports and
//! returns a machine-readable summary for tests.
//!
//! Scale note: databases are built at ~1:200 of the paper's (DESIGN.md
//! §2); experiment structure, workload shapes, and *relative* outcomes
//! (who wins, crossovers) are preserved. Set `PF_ROWS` to override the
//! synthetic table size.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod experiments;
pub mod soak;
pub mod util;

pub use experiments::*;
