//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--jobs N] [--fault-seed N] [--fault-rate P] [--feedback-dir D]
//!       table1 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11
//!       | ablation-counters | ablation-bitvector | ablation-dpsample | ablation-models
//!       | all | quick
//! ```
//!
//! `quick` runs everything at reduced scale (useful for smoke testing);
//! `PF_ROWS=<n>` overrides the synthetic table size for any subcommand.
//! `--jobs N` (or `PF_JOBS=<n>`, default: all cores) sets how many
//! worker threads the feedback-loop experiments use — output is
//! identical for any worker count.
//!
//! `--fault-seed N --fault-rate P` (or `PF_FAULT_SEED` /
//! `PF_FAULT_RATE`) turn on deterministic storage fault injection: a
//! fraction `P` of pages is damaged at load, chosen purely by
//! `(seed, table, page)`. The run must still complete — corrupt pages
//! are skipped and the affected estimates labelled degraded.
//! `--fault-error-rate E` (or `PF_FAULT_ERROR_RATE`) additionally makes
//! a fraction `E` of storage operations *return typed errors* (failed
//! reads, writes, fsyncs, renames) on their first attempt; retries make
//! the run transparent, so output stays byte-identical to a clean run.
//!
//! `--feedback-dir D` (or `PF_FEEDBACK_DIR`) makes the feedback-loop
//! figures (6, 7, 8, 11) persist every harvested measurement to a
//! crash-safe store under `D` (one subdirectory per experiment) and
//! recover whatever an earlier — possibly crashed — run persisted
//! before re-optimizing. Kill a run mid-figure, rerun it, and the
//! re-optimized plans come out byte-identical to an uninterrupted run.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use pagefeed::ParallelRunner;
use pf_bench::util::synthetic_rows;
use pf_bench::*;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--jobs N] [--fault-seed N] [--fault-rate P] [--fault-error-rate E] \
         [--feedback-dir D] [table1|fig6|fig7|fig8|fig9|fig10|fig11|ablation-*|all|quick]"
    );
    std::process::exit(2);
}

/// Parses `--name V` / `--name=V`, exiting with usage on a malformed
/// value. Returns `None` when `arg` is not this flag at all.
fn flag_value<T: std::str::FromStr>(
    arg: &str,
    name: &str,
    args: &mut impl Iterator<Item = String>,
) -> Option<T> {
    let raw = if arg == name {
        args.next()
    } else {
        arg.strip_prefix(name)
            .and_then(|rest| rest.strip_prefix('='))
            .map(str::to_string)
    }?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("{name} expects a valid value, got {raw:?}");
            usage();
        }
    }
}

fn main() {
    let mut jobs = ParallelRunner::from_env().jobs();
    let mut fault_seed: Option<u64> = None;
    let mut fault_rate: Option<f64> = None;
    let mut fault_error_rate: Option<f64> = None;
    let mut feedback_dir: Option<String> = None;
    let mut cmd: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let a = arg.as_str();
        if a == "-j" || a.starts_with("--jobs") {
            let name = if a == "-j" { "-j" } else { "--jobs" };
            if let Some(n) = flag_value(a, name, &mut args) {
                jobs = n;
                continue;
            }
        }
        if a.starts_with("--fault-seed") {
            if let Some(n) = flag_value(a, "--fault-seed", &mut args) {
                fault_seed = Some(n);
                continue;
            }
        }
        if a.starts_with("--fault-error-rate") {
            if let Some(p) = flag_value(a, "--fault-error-rate", &mut args) {
                fault_error_rate = Some(p);
                continue;
            }
        }
        if a.starts_with("--fault-rate") {
            if let Some(p) = flag_value(a, "--fault-rate", &mut args) {
                fault_rate = Some(p);
                continue;
            }
        }
        if a.starts_with("--feedback-dir") {
            if let Some(d) = flag_value(a, "--feedback-dir", &mut args) {
                feedback_dir = Some(d);
                continue;
            }
        }
        match a {
            other if cmd.is_none() => cmd = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                usage();
            }
        }
    }
    // Experiments construct their databases internally, so the fault
    // plan travels via the environment `FaultPlan::from_env` reads.
    // Single-threaded here: no worker threads exist yet.
    if let Some(seed) = fault_seed {
        std::env::set_var(pf_storage::FAULT_SEED_ENV, seed.to_string());
    }
    if let Some(rate) = fault_rate {
        if !(0.0..=1.0).contains(&rate) {
            eprintln!("--fault-rate expects a probability in [0, 1], got {rate}");
            usage();
        }
        std::env::set_var(pf_storage::FAULT_RATE_ENV, rate.to_string());
    }
    if let Some(rate) = fault_error_rate {
        if !(0.0..=1.0).contains(&rate) {
            eprintln!("--fault-error-rate expects a probability in [0, 1], got {rate}");
            usage();
        }
        std::env::set_var(pf_storage::FAULT_ERROR_RATE_ENV, rate.to_string());
    }
    if let Some(dir) = feedback_dir {
        std::env::set_var(pagefeed::FEEDBACK_DIR_ENV, dir);
    }
    let cmd = cmd.unwrap_or_else(|| "all".to_string());
    let rows = synthetic_rows();
    let result = match cmd.as_str() {
        "table1" => run_table1(rows).map(|_| ()),
        "fig6" => run_fig6(rows, 25, jobs).map(|_| ()),
        "fig7" => run_fig7(rows, 25, jobs).map(|_| ()),
        "fig8" => run_fig8(rows, 10, jobs).map(|_| ()),
        "fig9" => run_fig9(rows).map(|_| ()),
        "fig10" => run_fig10().map(|_| ()),
        "fig11" => run_fig11(5, jobs).map(|_| ()),
        "ablation-counters" => ablation_counters().map(|_| ()),
        "ablation-bitvector" => ablation_bitvector().map(|_| ()),
        "ablation-dpsample" => ablation_dpsample().map(|_| ()),
        "ablation-models" => ablation_models().map(|_| ()),
        "ablation-histogram" => ablation_histogram(rows).map(|_| ()),
        "ablation-buffer" => ablation_buffer().map(|_| ()),
        "ablation-sensitivity" => ablation_sensitivity(rows.min(80_000)).map(|_| ()),
        "all" => run_all(rows, 25, 10, 5, jobs),
        "quick" => run_all(40_000, 4, 3, 2, jobs),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn run_all(
    rows: usize,
    single_per_col: usize,
    join_per_col: usize,
    real_per_col: usize,
    jobs: usize,
) -> pf_common::Result<()> {
    run_table1(rows)?;
    run_fig6(rows, single_per_col, jobs)?;
    run_fig7(rows, single_per_col, jobs)?;
    run_fig8(rows, join_per_col, jobs)?;
    run_fig9(rows)?;
    run_fig10()?;
    run_fig11(real_per_col, jobs)?;
    ablation_counters()?;
    ablation_bitvector()?;
    ablation_dpsample()?;
    ablation_models()?;
    ablation_histogram(rows)?;
    ablation_buffer()?;
    ablation_sensitivity(rows.min(80_000))?;
    Ok(())
}
