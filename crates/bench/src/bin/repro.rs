//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--jobs N] table1 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11
//!       | ablation-counters | ablation-bitvector | ablation-dpsample | ablation-models
//!       | all | quick
//! ```
//!
//! `quick` runs everything at reduced scale (useful for smoke testing);
//! `PF_ROWS=<n>` overrides the synthetic table size for any subcommand.
//! `--jobs N` (or `PF_JOBS=<n>`, default: all cores) sets how many
//! worker threads the feedback-loop experiments use — output is
//! identical for any worker count.

use pagefeed::ParallelRunner;
use pf_bench::util::synthetic_rows;
use pf_bench::*;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--jobs N] [table1|fig6|fig7|fig8|fig9|fig10|fig11|ablation-*|all|quick]"
    );
    std::process::exit(2);
}

fn main() {
    let mut jobs = ParallelRunner::from_env().jobs();
    let mut cmd: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--jobs" | "-j" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => jobs = n,
                None => {
                    eprintln!("--jobs expects a positive integer");
                    usage();
                }
            },
            flag if flag.starts_with("--jobs=") => match flag["--jobs=".len()..].parse() {
                Ok(n) => jobs = n,
                Err(_) => {
                    eprintln!("--jobs expects a positive integer");
                    usage();
                }
            },
            other if cmd.is_none() => cmd = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                usage();
            }
        }
    }
    let cmd = cmd.unwrap_or_else(|| "all".to_string());
    let rows = synthetic_rows();
    let result = match cmd.as_str() {
        "table1" => run_table1(rows).map(|_| ()),
        "fig6" => run_fig6(rows, 25, jobs).map(|_| ()),
        "fig7" => run_fig7(rows, 25, jobs).map(|_| ()),
        "fig8" => run_fig8(rows, 10, jobs).map(|_| ()),
        "fig9" => run_fig9(rows).map(|_| ()),
        "fig10" => run_fig10().map(|_| ()),
        "fig11" => run_fig11(5, jobs).map(|_| ()),
        "ablation-counters" => ablation_counters().map(|_| ()),
        "ablation-bitvector" => ablation_bitvector().map(|_| ()),
        "ablation-dpsample" => ablation_dpsample().map(|_| ()),
        "ablation-models" => ablation_models().map(|_| ()),
        "ablation-histogram" => ablation_histogram(rows).map(|_| ()),
        "ablation-buffer" => ablation_buffer().map(|_| ()),
        "ablation-sensitivity" => ablation_sensitivity(rows.min(80_000)).map(|_| ()),
        "all" => run_all(rows, 25, 10, 5, jobs),
        "quick" => run_all(40_000, 4, 3, 2, jobs),
        other => {
            eprintln!("unknown experiment: {other}");
            usage();
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn run_all(
    rows: usize,
    single_per_col: usize,
    join_per_col: usize,
    real_per_col: usize,
    jobs: usize,
) -> pf_common::Result<()> {
    run_table1(rows)?;
    run_fig6(rows, single_per_col, jobs)?;
    run_fig7(rows, single_per_col, jobs)?;
    run_fig8(rows, join_per_col, jobs)?;
    run_fig9(rows)?;
    run_fig10()?;
    run_fig11(real_per_col, jobs)?;
    ablation_counters()?;
    ablation_bitvector()?;
    ablation_dpsample()?;
    ablation_models()?;
    ablation_histogram(rows)?;
    ablation_buffer()?;
    ablation_sensitivity(rows.min(80_000))?;
    Ok(())
}
