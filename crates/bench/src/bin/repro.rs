//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro table1 | fig6 | fig7 | fig8 | fig9 | fig10 | fig11
//!       | ablation-counters | ablation-bitvector | ablation-dpsample | ablation-models
//!       | all | quick
//! ```
//!
//! `quick` runs everything at reduced scale (useful for smoke testing);
//! `PF_ROWS=<n>` overrides the synthetic table size for any subcommand.

use pf_bench::util::synthetic_rows;
use pf_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let rows = synthetic_rows();
    let result = match cmd {
        "table1" => run_table1(rows).map(|_| ()),
        "fig6" => run_fig6(rows, 25).map(|_| ()),
        "fig7" => run_fig7(rows, 25).map(|_| ()),
        "fig8" => run_fig8(rows, 10).map(|_| ()),
        "fig9" => run_fig9(rows).map(|_| ()),
        "fig10" => run_fig10().map(|_| ()),
        "fig11" => run_fig11(5).map(|_| ()),
        "ablation-counters" => ablation_counters().map(|_| ()),
        "ablation-bitvector" => ablation_bitvector().map(|_| ()),
        "ablation-dpsample" => ablation_dpsample().map(|_| ()),
        "ablation-models" => ablation_models().map(|_| ()),
        "ablation-histogram" => ablation_histogram(rows).map(|_| ()),
        "ablation-buffer" => ablation_buffer().map(|_| ()),
        "ablation-sensitivity" => ablation_sensitivity(rows.min(80_000)).map(|_| ()),
        "all" => run_all(rows, 25, 10, 5),
        "quick" => run_all(40_000, 4, 3, 2),
        other => {
            eprintln!("unknown experiment: {other}");
            eprintln!(
                "usage: repro [table1|fig6|fig7|fig8|fig9|fig10|fig11|ablation-*|all|quick]"
            );
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn run_all(
    rows: usize,
    single_per_col: usize,
    join_per_col: usize,
    real_per_col: usize,
) -> pf_common::Result<()> {
    run_table1(rows)?;
    run_fig6(rows, single_per_col)?;
    run_fig7(rows, single_per_col)?;
    run_fig8(rows, join_per_col)?;
    run_fig9(rows)?;
    run_fig10()?;
    run_fig11(real_per_col)?;
    ablation_counters()?;
    ablation_bitvector()?;
    ablation_dpsample()?;
    ablation_models()?;
    ablation_histogram(rows)?;
    ablation_buffer()?;
    ablation_sensitivity(rows.min(80_000))?;
    Ok(())
}
