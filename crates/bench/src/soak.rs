//! Deterministic overload soak harness.
//!
//! Builds seeded multi-thousand-query storms — mixed priorities,
//! deadlines, cancellations, and injected feedback-store faults — and
//! drives them through [`pagefeed::run_admitted_workload`] at several
//! multiples of the system's service capacity, all on the simulated
//! clock. Because every admission, shed, degradation, deadline, and
//! breaker decision reads only simulated time, a storm's full trace is
//! a pure function of `(seed, spec)`: the soak asserts it is
//! byte-identical across repeat runs and across worker counts, that the
//! queue and memory stay bounded, and that no feedback is lost or
//! duplicated.
//!
//! Shared by `benches/overload_soak.rs` (the CI artifact writer) and
//! the `tests/overload.rs` integration suite.

use pagefeed::{
    run_admitted_workload, AdmissionConfig, AdmittedJob, AdmittedRunReport, CircuitBreaker,
    Database, MemoryBudget, MonitorConfig, ParallelRunner, Query, BASE_QUERY_BYTES,
};
use pf_storage::FaultPlan;
use pf_workloads::single_table_workload;
use pf_workloads::synthetic::{build, SyntheticConfig};

/// One soak scenario: everything the storm is derived from.
#[derive(Debug, Clone)]
pub struct SoakSpec {
    /// Seed deriving arrivals, classes, deadlines, and cancellations.
    pub seed: u64,
    /// Queries in the storm.
    pub queries: usize,
    /// Feedback-store error-return rate (0 disables fault injection).
    pub error_rate: f64,
    /// Offered load as a multiple of service capacity (4.0 = the
    /// acceptance scenario: arrivals four times faster than the
    /// concurrency gate can serve).
    pub over_capacity: f64,
    /// Worker threads for intra-query morsel parallelism. Never
    /// affects the simulated-clock trace.
    pub jobs: usize,
}

impl SoakSpec {
    /// The acceptance-criteria storm: 4× over capacity.
    pub fn storm(seed: u64, queries: usize, error_rate: f64, jobs: usize) -> Self {
        SoakSpec {
            seed,
            queries,
            error_rate,
            over_capacity: 4.0,
            jobs,
        }
    }
}

/// What one soak run produced, reduced to the numbers the CI artifact
/// and the assertions need.
#[derive(Debug)]
pub struct SoakOutcome {
    /// The full driver report (records, traces, stats).
    pub report: AdmittedRunReport,
    /// FNV-1a digest of the admit/shed trace plus the breaker trace —
    /// the byte-identity witness compared across jobs and repeat runs.
    pub digest: u64,
    /// Queries that completed with a result.
    pub completed: usize,
    /// Queries aborted by their deadline.
    pub deadline_exceeded: usize,
    /// Queries cancelled (queued or mid-run).
    pub cancelled: usize,
    /// The admission queue capacity the run was configured with.
    pub queue_capacity: usize,
    /// The memory-budget capacity the run was configured with.
    pub budget_capacity: usize,
    /// Durable feedback records actually in the store afterwards.
    pub store_len: usize,
}

impl SoakOutcome {
    /// Asserts every invariant the soak guarantees regardless of
    /// enforcement gating: all jobs settled (no wedge), the queue and
    /// reserved memory stayed within their configured bounds, and no
    /// feedback was lost or duplicated.
    pub fn assert_invariants(&self) {
        for (i, rec) in self.report.records.iter().enumerate() {
            if let Err(pf_common::Error::Internal(msg)) = &rec.result {
                panic!("job {i} wedged: {msg}");
            }
        }
        assert!(
            self.report.stats.max_queue_depth <= self.queue_capacity,
            "queue depth {} exceeded capacity {}",
            self.report.stats.max_queue_depth,
            self.queue_capacity
        );
        assert!(
            self.report.budget.peak_reserved() <= self.budget_capacity,
            "peak reserved {} exceeded budget {}",
            self.report.budget.peak_reserved(),
            self.budget_capacity
        );
        assert_eq!(self.report.lost_reports, 0, "feedback was lost");
        assert_eq!(
            self.store_len as u64, self.report.durable_reports,
            "store length and durable count disagree: duplicated or dropped records"
        );
        let settled = self
            .report
            .records
            .iter()
            .filter(|r| r.result.is_ok() || r.result.is_err())
            .count();
        assert_eq!(settled, self.report.records.len());
    }
}

/// 64-bit FNV-1a over an iterator of lines — the trace digest.
pub fn fnv1a_lines<'a>(lines: impl Iterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for line in lines {
        for &b in line.as_bytes() {
            eat(b);
        }
        eat(b'\n');
    }
    h
}

/// A tiny deterministic xorshift* stream for storm shaping.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The database every storm runs against (small but index-rich, so
/// plans mix scans, fetches, and seeks).
pub fn soak_db() -> Database {
    build(&SyntheticConfig {
        rows: 10_000,
        with_t1: false,
        seed: 2_024,
    })
    .expect("synthetic build")
}

/// The base query pool the storm cycles through.
pub fn soak_queries(db: &Database) -> Vec<Query> {
    single_table_workload(db, "T", &["c2", "c3", "c4", "c5"], 8, (0.01, 0.10), 7)
        .expect("workload build")
}

/// Derives the storm: `spec.queries` jobs cycling the base pool, with
/// seeded classes (~30% interactive), deadlines (~15%), cancellations
/// (~10%), and arrival spacing that offers `spec.over_capacity`× the
/// measured service capacity of the admission gate.
pub fn build_storm(
    db: &Database,
    pool: &[Query],
    spec: &SoakSpec,
    admission: &AdmissionConfig,
) -> Vec<AdmittedJob> {
    // Mean simulated service time of the pool — deterministic, so the
    // derived arrival rate is too.
    let mean_ms = pool
        .iter()
        .map(|q| {
            db.run(q, &MonitorConfig::default())
                .expect("probe run")
                .elapsed_ms
        })
        .sum::<f64>()
        / pool.len() as f64;
    // Capacity: max_concurrent queries every mean_ms. Offered load at
    // `over_capacity`× that gives the mean inter-arrival gap.
    let gap_ms = mean_ms / (admission.max_concurrent as f64 * spec.over_capacity.max(0.01));

    let mut rng = Rng::new(spec.seed);
    let mut at_ms = 0.0f64;
    (0..spec.queries)
        .map(|i| {
            at_ms += gap_ms * (0.5 + rng.unit()); // jittered spacing
            let query = pool[i % pool.len()].clone();
            let mut job = if rng.unit() < 0.30 {
                AdmittedJob::interactive(query, at_ms)
            } else {
                AdmittedJob::batch(query, at_ms)
            };
            if rng.unit() < 0.15 {
                // Around the mean: some finish, some abort.
                job.deadline_ms = Some((mean_ms * (0.5 + rng.unit())).ceil() as u64);
            }
            if rng.unit() < 0.10 {
                job.cancel_at_ms = Some(at_ms + mean_ms * rng.unit() * 2.0);
            }
            job
        })
        .collect()
}

/// The admission configuration every soak uses: a 4-wide gate, a
/// 16-deep queue, and a token bucket tight enough to occasionally pace
/// admissions (the gate and queue still do most of the shedding).
pub fn soak_admission() -> AdmissionConfig {
    AdmissionConfig {
        max_concurrent: 4,
        queue_capacity: 16,
        tokens_per_sec: 200.0,
        burst: 4.0,
    }
}

/// The soak memory budget: four base reservations plus a slack chosen
/// so the fourth concurrent query usually cannot afford its full
/// monitor estimate — it *degrades* (and keeps its gate slot, letting
/// the queue build) rather than shedding outright.
pub fn soak_budget_capacity() -> usize {
    4 * BASE_QUERY_BYTES + 500
}

/// Runs one soak scenario end to end and digests its traces.
pub fn run_soak(spec: &SoakSpec) -> SoakOutcome {
    let mut db = soak_db();
    let pool = soak_queries(&db);
    let admission = soak_admission();
    let jobs = build_storm(&db, &pool, spec, &admission);

    // A fresh feedback store per run (fault-injected when asked), with
    // the breaker in front of it.
    let dir = std::env::temp_dir().join(format!(
        "pagefeed-soak-{}-{}-{}-{}",
        spec.seed,
        (spec.error_rate * 1000.0) as u64,
        spec.jobs,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    db.attach_feedback_store(&dir).expect("attach store");
    if spec.error_rate > 0.0 {
        let plan = FaultPlan::new(spec.seed, 0.0)
            .and_then(|p| p.with_error_returns(spec.error_rate))
            .expect("fault plan");
        if let Some(store) = db.feedback_store_mut() {
            store.set_fault_plan(Some(plan));
        }
    }
    db.set_breaker(Some(CircuitBreaker::default()));

    let runner = ParallelRunner::new(spec.jobs);
    let budget_capacity = soak_budget_capacity();
    let report = run_admitted_workload(
        &mut db,
        &runner,
        &jobs,
        &MonitorConfig::default(),
        admission.clone(),
        MemoryBudget::new(budget_capacity),
    );

    let digest = fnv1a_lines(
        report
            .trace
            .iter()
            .map(String::as_str)
            .chain(report.breaker_trace.iter().map(String::as_str)),
    );
    let completed = report.records.iter().filter(|r| r.result.is_ok()).count();
    let deadline_exceeded = report
        .records
        .iter()
        .filter(|r| matches!(r.result, Err(pf_common::Error::DeadlineExceeded { .. })))
        .count();
    let cancelled = report
        .records
        .iter()
        .filter(|r| matches!(r.result, Err(pf_common::Error::Cancelled)))
        .count();
    let store_len = db.feedback_store().map_or(0, |s| s.len());
    let _ = std::fs::remove_dir_all(&dir);

    SoakOutcome {
        report,
        digest,
        completed,
        deadline_exceeded,
        cancelled,
        queue_capacity: admission.queue_capacity,
        budget_capacity,
        store_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_storm_is_deterministic_and_bounded() {
        let spec = SoakSpec::storm(1, 120, 0.01, 1);
        let a = run_soak(&spec);
        a.assert_invariants();
        let b = run_soak(&spec);
        assert_eq!(a.digest, b.digest, "same seed must replay byte-identically");
        assert!(a.completed > 0, "a 4x storm still completes some queries");
        assert!(a.report.stats.shed() > 0, "a 4x storm must shed");
    }
}
