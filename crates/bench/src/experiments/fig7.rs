//! Fig 7 — Monitoring overheads for single-table queries.
//!
//! The same 100-query workload as Fig 6; for each query the overhead is
//! `(T_monitored − T)/T` on the simulated clock (both runs cold-cache).
//! The paper reports < 2 % for most queries.

use crate::util::{max, mean, section};
use pagefeed::{MonitorConfig, ParallelRunner};
use pf_common::Result;
use pf_workloads::{single_table_workload, synthetic};

/// One query's monitoring overhead.
#[derive(Debug, Clone)]
pub struct OverheadPoint {
    /// Query index.
    pub query: usize,
    /// Relative overhead (0.02 = 2 %).
    pub overhead: f64,
}

/// Runs the Fig 7 experiment across `jobs` worker threads.
pub fn run_fig7(rows: usize, per_column: usize, jobs: usize) -> Result<Vec<OverheadPoint>> {
    section("Fig 7: Overheads for single table queries");
    let mut db = synthetic::build(&synthetic::SyntheticConfig {
        rows,
        with_t1: false,
        seed: 71,
    })?;
    crate::util::attach_feedback_from_env(&mut db, "fig7")?;
    let queries = single_table_workload(
        &db,
        "T",
        &["c2", "c3", "c4", "c5"],
        per_column,
        (0.01, 0.10),
        72,
    )?;

    let runner = ParallelRunner::new(jobs);
    let outcomes = runner.run_feedback(&mut db, &queries, &MonitorConfig::default())?;
    let points: Vec<OverheadPoint> = outcomes
        .iter()
        .enumerate()
        .map(|(i, out)| OverheadPoint {
            query: i,
            overhead: out.overhead(),
        })
        .collect();
    println!("{:>5} {:>9}", "query", "overhead");
    for p in &points {
        println!("{:>5} {:>8.2}%", p.query, p.overhead * 100.0);
    }
    let os: Vec<f64> = points.iter().map(|p| p.overhead).collect();
    println!(
        "mean {:.2}%  max {:.2}%",
        mean(&os) * 100.0,
        max(&os) * 100.0
    );
    crate::util::report_degraded(&outcomes);
    crate::util::report_resilience(&runner);
    Ok(points)
}
