//! Fig 10 — Page clustering for real datasets.
//!
//! For predicates of selectivity < 10 % across the five non-synthetic
//! databases, compute the Clustering Ratio `CR = (N − LB)/(UB − LB)`.
//! The paper's finding: CR varies widely (mean 0.56, σ 0.4) — "simple
//! analytical formulas may be insufficient".

use crate::util::{mean, section, std_dev};
use pagefeed::{Database, PredSpec, Query};
use pf_common::{Datum, Result};
use pf_exec::CompareOp;
use pf_feedback::clustering_ratio::{summarize, ClusteringObservation};
use pf_workloads::queries::ColumnSampler;
use pf_workloads::{realworld, tpch};

/// One `(database, column, predicate)` clustering observation.
#[derive(Debug, Clone)]
pub struct CrPoint {
    /// Database name.
    pub database: String,
    /// Predicate text.
    pub predicate: String,
    /// Rows matched.
    pub rows: u64,
    /// Distinct pages touched.
    pub pages: u64,
    /// The clustering ratio.
    pub cr: f64,
}

fn observe(
    db: &Database,
    dbname: &str,
    table: &str,
    col: &str,
    op: CompareOp,
    value: Datum,
    out: &mut Vec<CrPoint>,
) -> Result<()> {
    let meta = db.catalog().table_by_name(table)?;
    let schema = meta.schema().clone();
    let pred = Query::resolve_predicates(&[PredSpec::new(col, op, value.clone())], &schema)?;
    let n = db.true_cardinality(table, &pred)?;
    // Selectivity filter, as in the paper (< 10%).
    if n == 0 || n as f64 > meta.stats.rows as f64 * 0.10 {
        return Ok(());
    }
    let pages = db.true_dpc(table, &pred)?;
    let obs = ClusteringObservation {
        rows: n,
        pages_touched: pages,
        table_pages: u64::from(meta.stats.pages),
        rows_per_page: meta.stats.rows_per_page,
    };
    if let Some(cr) = obs.ratio() {
        out.push(CrPoint {
            database: dbname.to_string(),
            predicate: pred.key().to_string(),
            rows: n,
            pages,
            cr,
        });
    }
    Ok(())
}

/// Runs the Fig 10 experiment: several predicates per indexed column of
/// each of the five databases.
pub fn run_fig10() -> Result<Vec<CrPoint>> {
    section("Fig 10: Page Clustering for Real Datasets");
    let mut points = Vec::new();

    let dbs: Vec<(&str, &str, Database, Vec<&str>)> = vec![
        (
            "Book Retailer",
            "book_retailer",
            realworld::book_retailer(101)?,
            vec!["order_date", "ship_date", "cust_id", "book_cat"],
        ),
        (
            "Yellow Pages",
            "yellow_pages",
            realworld::yellow_pages(102)?,
            vec!["zip", "category", "phone"],
        ),
        (
            "TPC-H",
            "lineitem",
            tpch::build_lineitem(103)?,
            vec!["l_shipdate", "l_commitdate", "l_receiptdate", "l_suppkey"],
        ),
        (
            "Voter data",
            "voter",
            realworld::voter(104)?,
            vec!["reg_date", "precinct", "birth_year"],
        ),
        (
            "Products",
            "products",
            realworld::products(105)?,
            vec!["category", "supplier", "list_price"],
        ),
    ];

    for (dbname, table, db, cols) in &dbs {
        for col in cols {
            let sampler = ColumnSampler::build(db, table, col)?;
            // Range predicates at three selectivities, plus one equality
            // at the 30th percentile value.
            for q in [0.02, 0.05, 0.09] {
                observe(
                    db,
                    dbname,
                    table,
                    col,
                    CompareOp::Lt,
                    sampler.quantile(q),
                    &mut points,
                )?;
            }
            observe(
                db,
                dbname,
                table,
                col,
                CompareOp::Eq,
                sampler.quantile(0.3),
                &mut points,
            )?;
        }
    }

    println!(
        "{:<14} {:<42} {:>7} {:>7} {:>6}",
        "database", "predicate", "rows", "pages", "CR"
    );
    for p in &points {
        println!(
            "{:<14} {:<42} {:>7} {:>7} {:>6.2}",
            p.database, p.predicate, p.rows, p.pages, p.cr
        );
    }
    let crs: Vec<f64> = points.iter().map(|p| p.cr).collect();
    let (m, s) = summarize(&crs);
    println!("mean CR {m:.2}  std dev {s:.2}   (paper: mean 0.56, std dev 0.4)");
    debug_assert!((mean(&crs) - m).abs() < 1e-12 && std_dev(&crs) >= 0.0);
    Ok(points)
}
