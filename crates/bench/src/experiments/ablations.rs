//! Ablations beyond the paper's plots (DESIGN.md §4).

use crate::util::{mean, section};
use pf_common::rng::Rng;
use pf_common::{Datum, Result};
use pf_feedback::distinct_estimators::{estimate_chao, estimate_gee, ReservoirSampler};
use pf_feedback::{BitVectorFilter, DpSampler, FmSketch, LinearCounter};
use pf_optimizer::dpc_model::{cardenas, mackert_lohman, yao};
use pf_workloads::perm::scattered_permutation;
use std::collections::HashSet;

/// One row of the counter-comparison table.
#[derive(Debug, Clone)]
pub struct CounterRow {
    /// Memory given to each estimator, in bits (reservoir gets bits/64
    /// samples, matching footprint).
    pub bits: usize,
    /// Relative error of linear counting.
    pub linear_err: f64,
    /// Relative error of a Flajolet–Martin PCSA sketch (the paper's ref 8).
    pub fm_err: f64,
    /// Relative error of reservoir + GEE.
    pub gee_err: f64,
    /// Relative error of reservoir + Chao.
    pub chao_err: f64,
}

/// Probabilistic counting vs sampling-based distinct estimation — the
/// comparison Section III-A defers to future work. A simulated
/// index-plan PID stream (rows in key order, pages revisited) feeds all
/// estimators at equal memory budgets.
pub fn ablation_counters() -> Result<Vec<CounterRow>> {
    section("Ablation: linear counting vs sampling estimators (equal memory)");
    let pages = 8_192u32;
    let distinct = 3_000usize;
    // A key-ordered fetch stream: ~4 rows per qualifying page, shuffled.
    let mut rng = Rng::new(7);
    let mut stream = Vec::new();
    let qualifying = scattered_permutation(pages as usize, 1.0, 8);
    for &p in qualifying.iter().take(distinct) {
        for _ in 0..4 {
            stream.push(p as u32);
        }
    }
    rng.shuffle(&mut stream);

    let mut rows = Vec::new();
    for bits in [512usize, 1_024, 4_096, 16_384] {
        let mut lc = LinearCounter::new(bits, 1);
        // Equal footprint: a PID sample entry / FM bitmap is 64 bits.
        let mut fm = FmSketch::new((bits / 64).max(8), 3);
        let mut rs = ReservoirSampler::new((bits / 64).max(4), 2);
        for &p in &stream {
            lc.observe(p);
            fm.observe(p);
            rs.offer(p);
        }
        let rel = |e: f64| (e - distinct as f64).abs() / distinct as f64;
        rows.push(CounterRow {
            bits,
            linear_err: rel(lc.estimate()),
            fm_err: rel(fm.estimate()),
            gee_err: rel(estimate_gee(rs.sample(), rs.seen())),
            chao_err: rel(estimate_chao(rs.sample())),
        });
    }
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10}",
        "bits", "linear", "FM/PCSA", "GEE", "Chao"
    );
    for r in &rows {
        println!(
            "{:>7} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            r.bits,
            r.linear_err * 100.0,
            r.fm_err * 100.0,
            r.gee_err * 100.0,
            r.chao_err * 100.0
        );
    }
    Ok(rows)
}

/// One row of the bit-vector sizing sweep.
#[derive(Debug, Clone)]
pub struct BitVectorRow {
    /// Filter size as a fraction of the probed table's size.
    pub table_fraction: f64,
    /// Overestimation factor of the derived semi-join page count
    /// (collisions can only overestimate — never undercount).
    pub overestimate: f64,
    /// Filter fill ratio.
    pub fill: f64,
}

/// Bit-vector size vs DPC overestimation. The paper: a filter "of a
/// modest size (less than 1 % of the table size) was sufficient to yield
/// high accuracy", and collisions only overestimate. We use a *selective*
/// join (0.5 % of the key domain on the build side) where false positives
/// have room to inflate the count, and sweep the filter from 10⁻⁶ to
/// 10⁻² of the table size.
pub fn ablation_bitvector() -> Result<Vec<BitVectorRow>> {
    section("Ablation: bit-vector size vs page-count overestimation");
    let n_pages = 4_000usize;
    let rows_per_page = 50usize;
    let n_rows = n_pages * rows_per_page;
    let table_bits = n_pages as f64 * 8_192.0 * 8.0;
    // Inner join keys: a random permutation of 0..n_rows; build side
    // holds the 0.5 % smallest keys.
    let inner = scattered_permutation(n_rows, 1.0, 3);
    let build_max = (n_rows / 200) as i64;
    let build_keys: Vec<i64> = (0..build_max).collect();

    let key_set: HashSet<i64> = build_keys.iter().copied().collect();
    let truth = (0..n_pages)
        .filter(|p| {
            inner[p * rows_per_page..(p + 1) * rows_per_page]
                .iter()
                .any(|k| key_set.contains(k))
        })
        .count() as f64;

    let mut out = Vec::new();
    for frac in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
        let bits = (table_bits * frac) as usize;
        let mut f = BitVectorFilter::new(bits, 9);
        for k in &build_keys {
            f.insert(&Datum::Int(*k));
        }
        let measured = (0..n_pages)
            .filter(|p| {
                inner[p * rows_per_page..(p + 1) * rows_per_page]
                    .iter()
                    .any(|k| f.may_contain(&Datum::Int(*k)))
            })
            .count() as f64;
        out.push(BitVectorRow {
            table_fraction: frac,
            overestimate: measured / truth,
            fill: f.fill_ratio(),
        });
    }
    println!("{:>16} {:>13} {:>7}", "size/table", "overestimate", "fill");
    for r in &out {
        println!(
            "{:>15.4}% {:>12.3}x {:>6.3}",
            r.table_fraction * 100.0,
            r.overestimate,
            r.fill
        );
    }
    Ok(out)
}

/// One row of the sampling-rate sweep.
#[derive(Debug, Clone)]
pub struct DpSampleRow {
    /// Sampling fraction.
    pub fraction: f64,
    /// Mean relative error over trials.
    pub mean_error: f64,
    /// Fraction of pages whose rows paid full predicate evaluation.
    pub work_fraction: f64,
}

/// DPSample rate sweep — the error/overhead trade-off between Fig 9's
/// three operating points.
pub fn ablation_dpsample() -> Result<Vec<DpSampleRow>> {
    section("Ablation: DPSample rate sweep");
    let pages = 20_000u32;
    let satisfying = 5_500u32;
    let mut out = Vec::new();
    for fraction in [0.005, 0.01, 0.02, 0.05, 0.1, 0.5, 1.0] {
        let mut errs = Vec::new();
        let mut sampled_frac = 0.0;
        for seed in 0..20 {
            let mut s = DpSampler::new(fraction, seed)?;
            for p in 0..pages {
                if s.start_page() {
                    s.observe_row(p < satisfying);
                }
            }
            s.finish();
            errs.push((s.estimate() - f64::from(satisfying)).abs() / f64::from(satisfying));
            sampled_frac = s.pages_sampled() as f64 / s.pages_seen() as f64;
        }
        out.push(DpSampleRow {
            fraction,
            mean_error: mean(&errs),
            work_fraction: sampled_frac,
        });
    }
    println!("{:>9} {:>11} {:>10}", "fraction", "mean error", "work");
    for r in &out {
        println!(
            "{:>8.1}% {:>10.2}% {:>9.1}%",
            r.fraction * 100.0,
            r.mean_error * 100.0,
            r.work_fraction * 100.0
        );
    }
    Ok(out)
}

/// One row of the disk-parameter sensitivity sweep.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Random-read : sequential-read cost ratio.
    pub seek_ratio: f64,
    /// Mean feedback speedup over the workload at this ratio.
    pub mean_speedup: f64,
    /// Queries whose plan changed after injection.
    pub plans_changed: usize,
}

/// Storage-parameter sensitivity (the paper's related work \[15\],
/// Reiss & Kanungo): how much the page-count feedback matters as the
/// random-vs-sequential cost ratio varies. At ratio 1 (an SSD-like
/// device) scattered fetches are cheap, the scan/seek decision barely
/// depends on the DPC, and feedback changes little; as seeks get
/// relatively costlier the mis-estimated DPC becomes the dominant error
/// and feedback speedups grow.
pub fn ablation_sensitivity(rows: usize) -> Result<Vec<SensitivityRow>> {
    use pagefeed::MonitorConfig;
    use pf_storage::DiskModel;
    use pf_workloads::synthetic::{build, SyntheticConfig};
    section("Ablation: disk-parameter sensitivity of feedback benefit");

    let mut out = Vec::new();
    for ratio in [1.0, 5.0, 20.0, 80.0] {
        let mut db = build(&SyntheticConfig {
            rows,
            with_t1: false,
            seed: 151,
        })?;
        db.disk = DiskModel {
            rand_read_ms: DiskModel::default().seq_read_ms * ratio,
            ..DiskModel::default()
        };
        let queries =
            pf_workloads::single_table_workload(&db, "T", &["c2", "c3"], 8, (0.01, 0.10), 152)?;
        let mut speedups = Vec::new();
        let mut changed = 0;
        for q in &queries {
            let fb = db.feedback_loop(q, &MonitorConfig::default())?;
            speedups.push(fb.speedup());
            changed += usize::from(fb.plan_changed());
        }
        out.push(SensitivityRow {
            seek_ratio: ratio,
            mean_speedup: mean(&speedups),
            plans_changed: changed,
        });
    }
    println!(
        "{:>11} {:>13} {:>14}",
        "seek ratio", "mean speedup", "plans changed"
    );
    for r in &out {
        println!(
            "{:>10.0}x {:>12.1}% {:>14}",
            r.seek_ratio,
            r.mean_speedup * 100.0,
            r.plans_changed
        );
    }
    Ok(out)
}

/// One row of the buffer-pressure sweep.
#[derive(Debug, Clone)]
pub struct BufferRow {
    /// Buffer pool capacity in pages.
    pub buffer_pages: usize,
    /// Distinct pages the plan needs (the DPC).
    pub dpc: u64,
    /// Physical reads actually performed (≥ DPC once the pool thrashes).
    pub physical_reads: u64,
    /// The Mackert–Lohman prediction for this buffer size.
    pub ml_prediction: f64,
}

/// Buffer pressure: execute one index plan under shrinking buffer pools
/// and compare actual physical reads against the Mackert–Lohman model.
/// With a large pool, fetches == DPC (the paper's setting); once the
/// pool is smaller than the working set, re-fetches appear — the regime
/// M-L models and DPC alone does not.
pub fn ablation_buffer() -> Result<Vec<BufferRow>> {
    use pagefeed::{Database, MonitorConfig, PredSpec, Query};
    use pf_common::{Column, DataType, Row, Schema};
    use pf_exec::CompareOp;
    section("Ablation: buffer pressure vs Mackert-Lohman");

    // A table whose index column is fully scattered, so an index seek
    // revisits pages in random order — the worst case for a small pool.
    let n = 60_000usize;
    let mut db = Database::new();
    let schema = Schema::new(vec![
        Column::new("id", DataType::Int),
        Column::new("scat", DataType::Int),
        Column::new("pad", DataType::Str),
    ]);
    let scat = scattered_permutation(n, 1.0, 31);
    let rows: Vec<Row> = (0..n)
        .map(|i| {
            Row::new(vec![
                Datum::Int(i as i64),
                Datum::Int(scat[i]),
                Datum::Str("x".repeat(60)),
            ])
        })
        .collect();
    db.create_table("t", schema, rows, Some("id"))?;
    db.create_index("ix", "t", "scat")?;
    db.analyze()?;

    let select = (n / 10) as i64;
    let query = Query::count(
        "t",
        vec![PredSpec::new("scat", CompareOp::Lt, Datum::Int(select))],
    );
    // Force the index plan regardless of cost: inject the true (large)
    // cardinality but a tiny DPC so the seek always wins.
    db.inject_accurate_cardinalities(&query)?;
    db.hints_mut()
        .inject_dpc("t", format!("scat<{select}"), 1.0);

    let meta = db.catalog().table_by_name("t")?;
    let pages = f64::from(meta.stats.pages);
    let schema2 = meta.schema().clone();
    let pred = Query::resolve_predicates(
        &[PredSpec::new("scat", CompareOp::Lt, Datum::Int(select))],
        &schema2,
    )?;
    let dpc = db.true_dpc("t", &pred)?;

    let mut out = Vec::new();
    for buffer in [16_384usize, 2_048, 512, 128, 32] {
        db.pool_pages = buffer;
        let run = db.run(&query, &MonitorConfig::off())?;
        assert!(run.description.contains("IndexSeek"), "{}", run.description);
        out.push(BufferRow {
            buffer_pages: buffer,
            dpc,
            physical_reads: run.stats.rand_physical_reads,
            ml_prediction: mackert_lohman(select as f64, pages, buffer as f64),
        });
    }
    println!(
        "{:>8} {:>7} {:>15} {:>9}",
        "buffer", "DPC", "physical reads", "M-L"
    );
    for r in &out {
        println!(
            "{:>8} {:>7} {:>15} {:>9.0}",
            r.buffer_pages, r.dpc, r.physical_reads, r.ml_prediction
        );
    }
    Ok(out)
}

/// One row of the self-tuning histogram evaluation.
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Number of training queries absorbed before this test query.
    pub trained_on: usize,
    /// Relative DPC error of the pure analytical model.
    pub analytic_error: f64,
    /// Relative DPC error of the histogram prediction (analytical when
    /// the histogram declines).
    pub histogram_error: f64,
    /// Whether the histogram-driven plan matched the feedback-driven one.
    pub plan_matches_oracle: bool,
}

/// Self-tuning DPC histograms (Section VI future work): train the cache
/// on one workload, then measure DPC-prediction error and plan quality
/// on *unseen* queries over the same columns — no per-query feedback.
pub fn ablation_histogram(rows: usize) -> Result<Vec<HistogramRow>> {
    use pagefeed::{MonitorConfig, PredSpec, Query};
    use pf_exec::CompareOp;
    use pf_workloads::synthetic::{build, SyntheticConfig};
    section("Ablation: self-tuning DPC histograms on unseen queries");

    let mut db = build(&SyntheticConfig {
        rows,
        with_t1: false,
        seed: 202,
    })?;
    db.enable_dpc_histograms(32);
    let n = rows as i64;
    let q = |col: &str, lo: i64, hi: i64| {
        Query::count(
            "T",
            vec![
                PredSpec::new(col, CompareOp::Ge, Datum::Int(lo)),
                PredSpec::new(col, CompareOp::Lt, Datum::Int(hi)),
            ],
        )
    };

    // Training workload: ranges tiling ~the whole domain of c2 and c5.
    let mut rng = Rng::new(203);
    let mut trained = 0usize;
    let mut out = Vec::new();
    for round in 0..6i64 {
        // Test on unseen queries BEFORE this round's training.
        for col in ["c2", "c5"] {
            let lo = (rng.gen_range((n as u64) / 2) + 1) as i64;
            let width = 1 + (n / 100) + rng.gen_range((n as u64) / 50) as i64;
            let test = q(col, lo, lo + width);

            let schema = db.catalog().table_by_name("T")?.schema().clone();
            let pred = pagefeed::Query::resolve_predicates(
                &[
                    PredSpec::new(col, CompareOp::Ge, Datum::Int(lo)),
                    PredSpec::new(col, CompareOp::Lt, Datum::Int(lo + width)),
                ],
                &schema,
            )?;
            let truth = db.true_dpc("T", &pred)? as f64;
            let pages = f64::from(db.catalog().table_by_name("T")?.stats.pages);
            let true_rows = db.true_cardinality("T", &pred)? as f64;
            let analytic = pf_optimizer::dpc_model::cardenas(true_rows, pages);

            let key = pred.key();
            let eff = db.effective_hints(&test)?;
            let predicted = eff.dpc("T", key).unwrap_or(analytic);

            // Oracle plan: exact DPC injected.
            let mut oracle_hints = db.hints().clone();
            oracle_hints.inject_dpc("T", key, truth);
            let oracle = {
                let saved = db.hints().clone();
                *db.hints_mut() = oracle_hints;
                db.inject_accurate_cardinalities(&test)?;
                let plan = db.lower(&test, &MonitorConfig::off())?;
                *db.hints_mut() = saved;
                plan.description
            };
            db.inject_accurate_cardinalities(&test)?;
            let chosen = db.lower(&test, &MonitorConfig::off())?.description;

            let rel = |e: f64| (e - truth).abs() / truth.max(1.0);
            out.push(HistogramRow {
                trained_on: trained,
                analytic_error: rel(analytic),
                histogram_error: rel(predicted),
                plan_matches_oracle: chosen == oracle,
            });
        }
        // Train on two adjacent domain slices per column this round, so
        // six rounds tile the whole column domain and coverage grows
        // monotonically.
        let slice = n / 12;
        for col in ["c2", "c5"] {
            for half in 0..2i64 {
                let lo = (2 * round + half) * slice;
                db.feedback_loop(&q(col, lo, lo + slice), &MonitorConfig::default())?;
                trained += 1;
            }
        }
    }

    println!(
        "{:>9} {:>13} {:>14} {:>12}",
        "trained", "analytic err", "histogram err", "plan=oracle"
    );
    for r in &out {
        println!(
            "{:>9} {:>12.1}% {:>13.1}% {:>12}",
            r.trained_on,
            r.analytic_error * 100.0,
            r.histogram_error * 100.0,
            r.plan_matches_oracle
        );
    }
    let early: Vec<f64> = out
        .iter()
        .filter(|r| r.trained_on == 0)
        .map(|r| r.histogram_error)
        .collect();
    let late: Vec<f64> = out
        .iter()
        .filter(|r| r.trained_on >= 16)
        .map(|r| r.histogram_error)
        .collect();
    println!(
        "mean histogram error: untrained {:.1}% -> trained {:.1}%",
        mean(&early) * 100.0,
        mean(&late) * 100.0
    );
    Ok(out)
}

/// One row of the analytical-model comparison.
#[derive(Debug, Clone)]
pub struct ModelRow {
    /// Scatter fraction of the column layout.
    pub scatter: f64,
    /// Predicate cardinality.
    pub rows: u64,
    /// Ground-truth distinct pages.
    pub truth: f64,
    /// Cardenas estimate.
    pub cardenas: f64,
    /// Yao estimate.
    pub yao: f64,
    /// Mackert–Lohman estimate (large buffer).
    pub mackert_lohman: f64,
}

/// Where the analytical formulas break: sweep the on-disk correlation and
/// compare each model's estimate against ground truth. All three models
/// ignore clustering, so their error grows as scatter → 0.
pub fn ablation_models() -> Result<Vec<ModelRow>> {
    section("Ablation: analytical DPC models vs clustering");
    let n_rows = 200_000usize;
    let rows_per_page = 50usize;
    let pages = (n_rows / rows_per_page) as u64;
    let select = 4_000u64;

    let mut out = Vec::new();
    for scatter in [0.0, 0.15, 0.5, 1.0] {
        let layout = scattered_permutation(n_rows, scatter, 21);
        // Predicate: column value < select; find distinct pages.
        let mut touched = HashSet::new();
        for (pos, &v) in layout.iter().enumerate() {
            if (v as u64) < select {
                touched.insert(pos / rows_per_page);
            }
        }
        out.push(ModelRow {
            scatter,
            rows: select,
            truth: touched.len() as f64,
            cardenas: cardenas(select as f64, pages as f64),
            yao: yao(select, n_rows as u64, pages),
            mackert_lohman: mackert_lohman(select as f64, pages as f64, 1e9),
        });
    }
    println!(
        "{:>8} {:>7} {:>8} {:>10} {:>10} {:>10}",
        "scatter", "rows", "truth", "Cardenas", "Yao", "M-L"
    );
    for r in &out {
        println!(
            "{:>8.2} {:>7} {:>8.0} {:>10.0} {:>10.0} {:>10.0}",
            r.scatter, r.rows, r.truth, r.cardenas, r.yao, r.mackert_lohman
        );
    }
    Ok(out)
}
