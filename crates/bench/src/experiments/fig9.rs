//! Fig 9 — Effectiveness of page sampling.
//!
//! Queries with an increasing number of predicates on a Table Scan plan;
//! monitoring all the relevant DPC expressions (atoms, indexed pairs,
//! full conjunction) requires turning predicate short-circuiting off —
//! at page-sample rates 1 %, 10 %, and 100 %. The paper's finding: the
//! 100 % (exact) line is impractical as predicates grow, while 1 %
//! sampling holds ≈2 % overhead with ≤0.5 % DPC error.

use crate::util::{max, section};
use pagefeed::{MonitorConfig, Query};
use pf_common::Result;
use pf_workloads::{multi_predicate_workload, synthetic};

/// Overhead/error at one (predicate count, sampling rate) cell.
#[derive(Debug, Clone)]
pub struct SamplingPoint {
    /// Number of conjuncts in the query.
    pub predicates: usize,
    /// Page-sampling fraction.
    pub fraction: f64,
    /// Relative monitoring overhead.
    pub overhead: f64,
    /// Worst relative DPC error across the monitored expressions.
    pub max_error: f64,
}

/// Runs the Fig 9 experiment.
pub fn run_fig9(rows: usize) -> Result<Vec<SamplingPoint>> {
    section("Fig 9: Effectiveness of Page Sampling");
    let mut db = synthetic::build(&synthetic::SyntheticConfig {
        rows,
        with_t1: false,
        seed: 91,
    })?;
    // Moderate per-atom selectivity so short-circuiting matters.
    let queries = multi_predicate_workload(&db, "T", &["c2", "c3", "c4", "c5"], 0.5, 92)?;
    let fractions = [0.01, 0.10, 1.0];

    let mut points = Vec::new();
    for q in &queries {
        let (table, predicate, _) = q.as_count()?;
        let k = predicate.len();
        let schema = db.catalog().table_by_name(table)?.schema().clone();
        let pred = Query::resolve_predicates(predicate, &schema)?;
        for &f in &fractions {
            let out = db.feedback_loop(q, &MonitorConfig::sampled(f))?;
            // Per-expression relative error against brute-force truth.
            let mut errors = Vec::new();
            for m in &out.report.measurements {
                // Recover the expression's atoms by matching labels.
                let mut indices: Vec<usize> = Vec::new();
                for (i, a) in pred.atoms.iter().enumerate() {
                    if m.expression.contains(&a.to_string()) {
                        indices.push(i);
                    }
                }
                if indices.is_empty() {
                    continue;
                }
                let sub = pf_exec::Conjunction::new(
                    indices.iter().map(|&i| pred.atoms[i].clone()).collect(),
                );
                let truth = db.true_dpc(table, &sub)? as f64;
                if truth > 0.0 {
                    errors.push((m.actual - truth).abs() / truth);
                }
            }
            points.push(SamplingPoint {
                predicates: k,
                fraction: f,
                overhead: out.overhead(),
                max_error: max(&errors),
            });
        }
    }

    println!(
        "{:>6} {:>9} {:>9} {:>10}",
        "preds", "sample", "overhead", "max error"
    );
    for p in &points {
        println!(
            "{:>6} {:>8.0}% {:>8.2}% {:>9.2}%",
            p.predicates,
            p.fraction * 100.0,
            p.overhead * 100.0,
            p.max_error * 100.0
        );
    }
    Ok(points)
}
