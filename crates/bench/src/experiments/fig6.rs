//! Fig 6 — SpeedUp for single-table queries on the synthetic database.
//!
//! 100 queries `select count(pad) from T where Ci < val` (25 per column
//! C2–C5, selectivity 1–10 %), exact cardinalities injected, plans
//! re-optimized with the DPCs measured from execution feedback.
//! Expected shape: large speedups on C2–C4 (the analytical model
//! over-estimates their page counts, so feedback flips Table Scan →
//! Index Seek), ≈0 on C5 (the analytical estimate is already right).

use crate::util::{mean, section};
use pagefeed::{MonitorConfig, ParallelRunner};
use pf_common::Result;
use pf_workloads::{single_table_workload, synthetic};

/// One query's outcome.
#[derive(Debug, Clone)]
pub struct SpeedupPoint {
    /// Query index in the workload (paper's x-axis).
    pub query: usize,
    /// Column the predicate is on.
    pub column: String,
    /// `(T − T′)/T`.
    pub speedup: f64,
    /// Whether the plan changed.
    pub plan_changed: bool,
}

/// Runs the Fig 6 experiment; `per_column` queries per column, feedback
/// cells dispatched across `jobs` worker threads (results are identical
/// for any worker count).
pub fn run_fig6(rows: usize, per_column: usize, jobs: usize) -> Result<Vec<SpeedupPoint>> {
    section("Fig 6: SpeedUp for single table queries");
    let mut db = synthetic::build(&synthetic::SyntheticConfig {
        rows,
        with_t1: false,
        seed: 61,
    })?;
    crate::util::attach_feedback_from_env(&mut db, "fig6")?;
    let columns = ["c2", "c3", "c4", "c5"];
    let queries = single_table_workload(&db, "T", &columns, per_column, (0.01, 0.10), 62)?;

    let runner = ParallelRunner::new(jobs);
    let outcomes = runner.run_feedback(&mut db, &queries, &MonitorConfig::default())?;
    let mut points = Vec::new();
    for (i, (q, out)) in queries.iter().zip(&outcomes).enumerate() {
        let (_, predicate, _) = q.as_count()?;
        points.push(SpeedupPoint {
            query: i,
            column: predicate[0].column.clone(),
            speedup: out.speedup(),
            plan_changed: out.plan_changed(),
        });
    }

    println!(
        "{:>5} {:>6} {:>9} {:>8}",
        "query", "col", "speedup", "changed"
    );
    for p in &points {
        println!(
            "{:>5} {:>6} {:>8.1}% {:>8}",
            p.query,
            p.column,
            p.speedup * 100.0,
            p.plan_changed
        );
    }
    for col in columns {
        let s: Vec<f64> = points
            .iter()
            .filter(|p| p.column == col)
            .map(|p| p.speedup)
            .collect();
        println!("mean speedup {col}: {:.1}%", mean(&s) * 100.0);
    }
    crate::util::report_degraded(&outcomes);
    crate::util::report_resilience(&runner);
    Ok(points)
}
