//! Fig 8 — SpeedUp for join queries.
//!
//! 40 queries `select count(T.pad) from T, T1 where T1.c1 < val and
//! T1.Ci = T.Ci` (10 per join column C2–C5), outer selectivities chosen
//! where the page count can influence the Hash-vs-INL choice (below the
//! ≈7 % crossover). Bit-vector filtering on the probe scan measures the
//! INL DPC from the Hash Join execution; feedback flips Hash → INL when
//! the join column is clustered.

use crate::util::{max, mean, section};
use pagefeed::{MonitorConfig, ParallelRunner};
use pf_common::Result;
use pf_workloads::{join_workload, synthetic};

/// One join query's outcome.
#[derive(Debug, Clone)]
pub struct JoinPoint {
    /// Query index.
    pub query: usize,
    /// Join column.
    pub column: String,
    /// `(T − T′)/T`.
    pub speedup: f64,
    /// Monitoring overhead of the bit-vector + sampling run.
    pub overhead: f64,
    /// Plans before/after.
    pub before: String,
    /// Plan after injection.
    pub after: String,
}

/// Runs the Fig 8 experiment; `per_column` queries per join column,
/// dispatched across `jobs` worker threads.
pub fn run_fig8(rows: usize, per_column: usize, jobs: usize) -> Result<Vec<JoinPoint>> {
    section("Fig 8: SpeedUp for join queries");
    let mut db = synthetic::build(&synthetic::SyntheticConfig {
        rows,
        with_t1: true,
        seed: 81,
    })?;
    crate::util::attach_feedback_from_env(&mut db, "fig8")?;
    let columns = ["c2", "c3", "c4", "c5"];
    let queries = join_workload(
        &db,
        "T1",
        "T",
        "c1",
        &columns,
        per_column,
        (0.002, 0.05),
        82,
    )?;

    // DPSample at 50 % on the probe scan keeps the semi-join hashing
    // cost ≈ 2 % (the paper's bit-vector overhead bound) while halving
    // the estimator variance relative to sparser sampling.
    let cfg = MonitorConfig::sampled(0.5);
    let runner = ParallelRunner::new(jobs);
    let outcomes = runner.run_feedback(&mut db, &queries, &cfg)?;
    let mut points = Vec::new();
    for (i, (q, out)) in queries.iter().zip(&outcomes).enumerate() {
        let (_, _, _, outer_col, _) = q.as_join()?;
        points.push(JoinPoint {
            query: i,
            column: outer_col.to_string(),
            speedup: out.speedup(),
            overhead: out.overhead(),
            before: out.before.description.clone(),
            after: out.after.description.clone(),
        });
    }

    println!(
        "{:>5} {:>6} {:>9} {:>9}  plan change",
        "query", "col", "speedup", "overhead"
    );
    for p in &points {
        let change = if p.before == p.after {
            "-".to_string()
        } else {
            format!(
                "{} -> {}",
                p.before.split('(').next().unwrap_or(""),
                p.after.split('(').next().unwrap_or("")
            )
        };
        println!(
            "{:>5} {:>6} {:>8.1}% {:>8.2}%  {}",
            p.query,
            p.column,
            p.speedup * 100.0,
            p.overhead * 100.0,
            change
        );
    }
    for col in columns {
        let s: Vec<f64> = points
            .iter()
            .filter(|p| p.column == col)
            .map(|p| p.speedup)
            .collect();
        println!("mean speedup {col}: {:.1}%", mean(&s) * 100.0);
    }
    let os: Vec<f64> = points.iter().map(|p| p.overhead).collect();
    println!("max bit-vector overhead: {:.2}%", max(&os) * 100.0);
    // Chosen hash-join strategy. Partition count and filter pushdown
    // are pure functions of the plan (never of runtime knobs), so this
    // line is byte-identical across `PF_JOIN_VECTOR` settings and job
    // counts.
    let mut hash_n = 0usize;
    let mut push_n = 0usize;
    let mut parts = std::collections::BTreeSet::new();
    for out in &outcomes {
        if let pagefeed::PlanChoice::Join(jp) = &out.before.choice {
            if jp.method == pf_optimizer::JoinMethod::Hash {
                hash_n += 1;
                parts.insert(pf_exec::join_partitions(jp.outer_plan.est_rows));
                if jp.est_rows < 0.5 * rows as f64 {
                    push_n += 1;
                }
            }
        }
    }
    if hash_n > 0 {
        let parts: Vec<String> = parts.iter().map(|p| p.to_string()).collect();
        println!(
            "join strategy: {hash_n} hash joins, parts={{{}}}, pushdown on {push_n}",
            parts.join(",")
        );
    }
    crate::util::report_degraded(&outcomes);
    crate::util::report_resilience(&runner);
    Ok(points)
}
