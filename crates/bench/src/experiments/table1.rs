//! Table I — databases used in experiments.

use crate::util::section;
use pagefeed::Database;
use pf_common::Result;
use pf_workloads::{realworld, synthetic, tpch};

/// One database's shape.
#[derive(Debug, Clone)]
pub struct DbShape {
    /// Database name (Table I row).
    pub name: &'static str,
    /// Rows loaded.
    pub rows: u64,
    /// Pages occupied.
    pub pages: u32,
    /// Average rows per page.
    pub rows_per_page: f64,
    /// The paper's rows-per-page figure, for comparison.
    pub paper_rows_per_page: f64,
}

/// Builds every Table I database and reports its shape.
pub fn run_table1(synthetic_rows: usize) -> Result<Vec<DbShape>> {
    section("Table I: Databases Used In Experiments (1:200 scale)");
    let mut shapes = Vec::new();
    let mut record =
        |name: &'static str, db: &Database, table: &str, paper_rpp: f64| -> Result<()> {
            let t = db.catalog().table_by_name(table)?;
            shapes.push(DbShape {
                name,
                rows: t.stats.rows,
                pages: t.stats.pages,
                rows_per_page: t.stats.rows_per_page,
                paper_rows_per_page: paper_rpp,
            });
            Ok(())
        };

    let br = realworld::book_retailer(11)?;
    record("Book Retailer", &br, "book_retailer", 27.0)?;
    let yp = realworld::yellow_pages(12)?;
    record("Yellow Pages", &yp, "yellow_pages", 39.0)?;
    let li = tpch::build_lineitem(13)?;
    record("TPC-H (Z=1) lineitem", &li, "lineitem", 54.0)?;
    let vo = realworld::voter(14)?;
    record("Voter data", &vo, "voter", 46.0)?;
    let pr = realworld::products(15)?;
    record("Products", &pr, "products", 9.0)?;
    let sy = synthetic::build(&synthetic::SyntheticConfig {
        rows: synthetic_rows,
        with_t1: false,
        seed: 16,
    })?;
    record("Synthetic", &sy, "T", 80.0)?;

    println!(
        "{:<22} {:>10} {:>8} {:>10} {:>12}",
        "Database", "Rows", "Pages", "Rows/Page", "Paper R/P"
    );
    for s in &shapes {
        println!(
            "{:<22} {:>10} {:>8} {:>10.1} {:>12.0}",
            s.name, s.rows, s.pages, s.rows_per_page, s.paper_rows_per_page
        );
    }
    Ok(shapes)
}
