//! One module per table/figure, plus ablations.

pub mod ablations;
pub mod fig10;
pub mod fig11;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;

pub use ablations::{
    ablation_bitvector, ablation_buffer, ablation_counters, ablation_dpsample, ablation_histogram,
    ablation_models, ablation_sensitivity,
};
pub use fig10::run_fig10;
pub use fig11::run_fig11;
pub use fig6::run_fig6;
pub use fig7::run_fig7;
pub use fig8::run_fig8;
pub use fig9::run_fig9;
pub use table1::run_table1;
