//! Fig 11 — SpeedUp for real-world databases.
//!
//! 80 queries across the five non-synthetic databases (for TPC-H, the
//! three `lineitem` date columns), selectivity < 10 %, run through the
//! feedback loop. Expected shape: substantial speedups on columns whose
//! clustering the analytical model misjudges, ≈0 on scattered columns.

use crate::util::{mean, section};
use pagefeed::{Database, MonitorConfig, ParallelRunner};
use pf_common::Result;
use pf_workloads::{realworld, single_table_workload, tpch};

/// One query's outcome.
#[derive(Debug, Clone)]
pub struct RealWorldPoint {
    /// Database name.
    pub database: String,
    /// Query index within the whole experiment.
    pub query: usize,
    /// `(T − T′)/T`.
    pub speedup: f64,
    /// Whether the plan changed.
    pub plan_changed: bool,
}

/// Runs the Fig 11 experiment with `per_column` queries per column,
/// each database's workload dispatched across `jobs` worker threads.
pub fn run_fig11(per_column: usize, jobs: usize) -> Result<Vec<RealWorldPoint>> {
    section("Fig 11: SpeedUp for Real World Databases");
    let mut dbs: Vec<(&str, &str, Database, Vec<&str>)> = vec![
        (
            "Book Retailer",
            "book_retailer",
            realworld::book_retailer(111)?,
            vec!["order_date", "ship_date", "cust_id"],
        ),
        (
            "Yellow Pages",
            "yellow_pages",
            realworld::yellow_pages(112)?,
            vec!["zip", "phone"],
        ),
        (
            "TPC-H",
            "lineitem",
            tpch::build_lineitem(113)?,
            vec!["l_shipdate", "l_commitdate", "l_receiptdate"],
        ),
        (
            "Voter data",
            "voter",
            realworld::voter(114)?,
            vec!["reg_date", "precinct", "birth_year"],
        ),
        (
            "Products",
            "products",
            realworld::products(115)?,
            vec!["category", "supplier"],
        ),
    ];

    let runner = ParallelRunner::new(jobs);
    let mut points = Vec::new();
    let mut all_outcomes = Vec::new();
    let mut qid = 0;
    for (dbname, table, db, cols) in &mut dbs {
        crate::util::attach_feedback_from_env(db, &format!("fig11-{table}"))?;
        let queries =
            single_table_workload(db, table, cols, per_column, (0.01, 0.10), 116 + qid as u64)?;
        let outcomes = runner.run_feedback(db, &queries, &MonitorConfig::default())?;
        for out in &outcomes {
            points.push(RealWorldPoint {
                database: dbname.to_string(),
                query: qid,
                speedup: out.speedup(),
                plan_changed: out.plan_changed(),
            });
            qid += 1;
        }
        all_outcomes.extend(outcomes);
    }

    println!(
        "{:>5} {:<14} {:>9} {:>8}",
        "query", "database", "speedup", "changed"
    );
    for p in &points {
        println!(
            "{:>5} {:<14} {:>8.1}% {:>8}",
            p.query,
            p.database,
            p.speedup * 100.0,
            p.plan_changed
        );
    }
    for dbname in [
        "Book Retailer",
        "Yellow Pages",
        "TPC-H",
        "Voter data",
        "Products",
    ] {
        let s: Vec<f64> = points
            .iter()
            .filter(|p| p.database == dbname)
            .map(|p| p.speedup)
            .collect();
        println!("mean speedup {dbname}: {:.1}%", mean(&s) * 100.0);
    }
    crate::util::report_degraded(&all_outcomes);
    crate::util::report_resilience(&runner);
    Ok(points)
}
