//! Workspace-level umbrella for examples and integration tests.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
