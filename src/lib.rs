//! Workspace-level umbrella for examples and integration tests.
